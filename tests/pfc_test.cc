// Tests for Priority Flow Control: pause semantics at the port, per-ingress
// accounting at the switch, losslessness under incast, and NIC reaction.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/topo/leaf_spine.h"
#include "src/workload/flow_driver.h"

namespace themis {
namespace {

class SinkNode : public Node {
 public:
  SinkNode(Simulator* sim, int id, std::string name)
      : Node(sim, id, NodeKind::kHost, std::move(name)) {}
  void ReceivePacket(const Packet& pkt, int) override { received.push_back(pkt); }
  std::vector<Packet> received;
};

TEST(PortPauseTest, PausedPortHoldsDataServesControl) {
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.propagation_delay = 0;
  net.Connect(a, b, spec);
  Port* ab = a->port(0);

  ab->SetPaused(true);
  ab->Send(MakeDataPacket(1, 0, 1, 0, 1000, 0));
  ab->Send(MakeControlPacket(PacketType::kAck, 1, 0, 1, 0, 0));
  sim.Run();
  // Only the control packet got through.
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(b->received[0].type, PacketType::kAck);

  ab->SetPaused(false);
  sim.Run();
  ASSERT_EQ(b->received.size(), 2u);
  EXPECT_EQ(b->received[1].type, PacketType::kData);
  EXPECT_EQ(ab->stats().pause_transitions, 1u);
}

TEST(PortPauseTest, PauseMidStreamFinishesCurrentPacket) {
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);
  spec.propagation_delay = 0;
  net.Connect(a, b, spec);
  Port* ab = a->port(0);

  ab->Send(MakeDataPacket(1, 0, 1, 0, 1000, 0));  // on the wire immediately
  ab->Send(MakeDataPacket(1, 0, 1, 1, 1000, 0));  // queued
  sim.Schedule(kMicrosecond, [ab] { ab->SetPaused(true); });  // mid-packet-0
  sim.Run();
  // Packet 0 completes (no preemption), packet 1 held.
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(b->received[0].psn, 0u);
}

// 1064 wire bytes at 1 Gbps.
constexpr TimePs kSer1000B1Gbps = Rate::Gbps(1).SerializationTime(1064);

TEST(PortPauseTest, PauseMidSerializationRecordsExactInterval) {
  // A pause landing mid-packet must not preempt the wire, but the interval
  // log has to record the pause exactly as asserted: [1 us, 20 us], with
  // overlap queries answering any sub-window.
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);
  spec.propagation_delay = 0;
  net.Connect(a, b, spec);
  Port* ab = a->port(0);

  ab->Send(MakeDataPacket(1, 0, 1, 0, 1000, 0));  // serializing until ~8.5 us
  ab->Send(MakeDataPacket(1, 0, 1, 1, 1000, 0));  // queued behind it
  sim.Schedule(kMicrosecond, [ab] { ab->SetPaused(true); });
  sim.Schedule(20 * kMicrosecond, [ab] { ab->SetPaused(false); });
  sim.Run();

  // Packet 0 finished despite the pause; packet 1 waited for the resume.
  ASSERT_EQ(b->received.size(), 2u);
  EXPECT_EQ(sim.now(), 20 * kMicrosecond + kSer1000B1Gbps);

  EXPECT_EQ(ab->stats().paused_time_ps, 19 * kMicrosecond);
  EXPECT_EQ(ab->PausedTimePs(), 19 * kMicrosecond);
  const PauseIntervalLog& log = ab->pause_log();
  EXPECT_FALSE(log.open());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.closed(0).begin, kMicrosecond);
  EXPECT_EQ(log.closed(0).end, 20 * kMicrosecond);
  EXPECT_EQ(log.TotalPausedPs(sim.now()), ab->PausedTimePs());
  // Overlap queries: containing, clipped, and disjoint windows.
  EXPECT_EQ(ab->PausedOverlapPs(0, 30 * kMicrosecond), 19 * kMicrosecond);
  EXPECT_EQ(ab->PausedOverlapPs(5 * kMicrosecond, 10 * kMicrosecond), 5 * kMicrosecond);
  EXPECT_EQ(ab->PausedOverlapPs(0, kMicrosecond), 0);
  EXPECT_EQ(ab->PausedOverlapPs(30 * kMicrosecond, 40 * kMicrosecond), 0);
}

TEST(PortPauseTest, ResumeBeforeDrainRestartsImmediately) {
  // Resume arriving long before the pause would "naturally" matter (the
  // queue never drained) restarts transmission at the resume instant, and
  // the logged interval is exactly the asserted one.
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);
  spec.propagation_delay = 0;
  net.Connect(a, b, spec);
  Port* ab = a->port(0);

  ab->SetPaused(true);
  ab->Send(MakeDataPacket(1, 0, 1, 0, 1000, 0));  // held
  sim.Schedule(2 * kMicrosecond, [ab] { ab->SetPaused(false); });
  sim.Run();

  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(sim.now(), 2 * kMicrosecond + kSer1000B1Gbps);
  EXPECT_EQ(ab->stats().pause_transitions, 1u);
  EXPECT_EQ(ab->stats().paused_time_ps, 2 * kMicrosecond);
  ASSERT_EQ(ab->pause_log().size(), 1u);
  EXPECT_EQ(ab->pause_log().closed(0).begin, 0);
  EXPECT_EQ(ab->pause_log().closed(0).end, 2 * kMicrosecond);
  EXPECT_FALSE(ab->pause_log().open());
}

TEST(PortPauseTest, BackToBackPauseRefreshCoalescesToOneInterval) {
  // PFC pause frames are refreshed while congestion persists: re-asserting
  // an already-paused port must neither count a new transition nor split
  // the logged interval. A later, separate pause opens a second interval.
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.propagation_delay = 0;
  net.Connect(a, b, spec);
  Port* ab = a->port(0);

  ab->SetPaused(true);
  sim.Schedule(1 * kMicrosecond, [ab] { ab->SetPaused(true); });  // refresh
  sim.Schedule(2 * kMicrosecond, [ab] { ab->SetPaused(true); });  // refresh
  sim.Schedule(3 * kMicrosecond, [ab] { ab->SetPaused(false); });
  sim.Schedule(5 * kMicrosecond, [ab] { ab->SetPaused(true); });
  sim.Schedule(6 * kMicrosecond, [ab] { ab->SetPaused(false); });
  sim.Run();

  EXPECT_EQ(ab->stats().pause_transitions, 2u);
  EXPECT_EQ(ab->stats().paused_time_ps, 4 * kMicrosecond);
  const PauseIntervalLog& log = ab->pause_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.closed(0).begin, 0);
  EXPECT_EQ(log.closed(0).end, 3 * kMicrosecond);
  EXPECT_EQ(log.closed(1).begin, 5 * kMicrosecond);
  EXPECT_EQ(log.closed(1).end, 6 * kMicrosecond);
  // A window spanning the gap counts both intervals' clipped parts only.
  EXPECT_EQ(ab->PausedOverlapPs(2 * kMicrosecond, 5'500'000), 1'500'000);
}

TEST(PortPauseTest, PauseOnFailedLinkKeepsAccountingConsistent) {
  // A link can fail while its port is paused (the PR-4 drop path): the
  // in-flight packet is blackholed, later sends drop at enqueue, and the
  // pause interval accounting stays exact through all of it.
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);
  spec.propagation_delay = 0;
  net.Connect(a, b, spec);
  Port* ab = a->port(0);

  ab->Send(MakeDataPacket(1, 0, 1, 0, 1000, 0));  // on the wire
  sim.Schedule(1 * kMicrosecond, [ab] { ab->SetPaused(true); });
  sim.Schedule(2 * kMicrosecond, [ab] { ab->set_failed(true); });
  // Send while both paused and failed: dropped at enqueue.
  sim.Schedule(5 * kMicrosecond, [ab] { ab->Send(MakeDataPacket(1, 0, 1, 1, 1000, 0)); });
  sim.Schedule(20 * kMicrosecond, [ab] { ab->SetPaused(false); });
  sim.Run();

  // The in-flight packet died at delivery time; nothing ever reached b.
  EXPECT_TRUE(b->received.empty());
  EXPECT_EQ(ab->stats().drops, 2u);
  // Pause accounting is independent of the failure.
  EXPECT_EQ(ab->stats().paused_time_ps, 19 * kMicrosecond);
  ASSERT_EQ(ab->pause_log().size(), 1u);
  EXPECT_EQ(ab->pause_log().closed(0).begin, 1 * kMicrosecond);
  EXPECT_EQ(ab->pause_log().closed(0).end, 20 * kMicrosecond);
  EXPECT_FALSE(ab->pause_log().open());
}

// Incast through one switch: many senders, one receiver, queue far larger
// than the receiver drain. Without PFC the egress drops; with PFC pauses
// propagate and nothing is lost.
struct IncastHarness {
  Simulator sim;
  Network net{&sim};
  std::vector<SinkNode*> hosts;
  Topology topo;

  explicit IncastHarness(bool pfc, int64_t queue_bytes) {
    LeafSpineConfig config;
    config.num_tors = 2;
    config.num_spines = 2;
    config.hosts_per_tor = 4;
    // Hosts hold their own backlog (the NIC pauses, it does not drop);
    // fabric queues are the scarce resource PFC must protect.
    config.host_link.queue_capacity_bytes = 8 << 20;
    config.fabric_link.queue_capacity_bytes = queue_bytes;
    topo = BuildLeafSpine(net, config, [this](Network& n, int, const std::string& name) {
      SinkNode* host = n.MakeNode<SinkNode>(name);
      hosts.push_back(host);
      return host;
    });
    if (pfc) {
      for (Switch* sw : topo.switches) {
        sw->ConfigurePfc(PfcConfig{.enabled = true, .xoff_bytes = 20'000, .xon_bytes = 10'000});
      }
    }
  }

  // All rack-0 hosts send line-rate-paced packets at host 4 (rack 1):
  // a 4:1 incast on host 4's downlink (no congestion control).
  void Blast(int packets_per_sender) {
    const TimePs gap = hosts[0]->port(0)->rate().SerializationTime(1500);
    for (int s = 0; s < 4; ++s) {
      SinkNode* sender = hosts[static_cast<size_t>(s)];
      for (int i = 0; i < packets_per_sender; ++i) {
        Packet pkt =
            MakeDataPacket(static_cast<uint32_t>(s + 1), sender->id(), hosts[4]->id(),
                           static_cast<uint32_t>(i), 1436, static_cast<uint16_t>(s * 11));
        sim.Schedule(gap * i, [sender, pkt] { sender->port(0)->Send(pkt); });
      }
    }
  }

  uint64_t TotalDrops() const {
    uint64_t drops = 0;
    for (const DuplexLink& link : net.links()) {
      drops += link.a.node->port(link.a.port)->stats().drops;
      drops += link.b.node->port(link.b.port)->stats().drops;
    }
    return drops;
  }
};

TEST(PfcTest, IncastDropsWithoutPfc) {
  IncastHarness h(/*pfc=*/false, /*queue_bytes=*/60'000);
  h.Blast(200);
  h.sim.Run();
  EXPECT_GT(h.TotalDrops(), 0u);
  EXPECT_LT(h.hosts[4]->received.size(), 800u);
}

TEST(PfcTest, IncastLosslessWithPfc) {
  IncastHarness h(/*pfc=*/true, /*queue_bytes=*/200'000);
  h.Blast(200);
  h.sim.Run();
  EXPECT_EQ(h.TotalDrops(), 0u);
  EXPECT_EQ(h.hosts[4]->received.size(), 800u);
  // Pauses actually happened (it was a real incast).
  uint64_t pauses = 0;
  for (Switch* sw : h.topo.switches) {
    pauses += sw->stats().pfc_pauses_sent;
  }
  EXPECT_GT(pauses, 0u);
}

TEST(PfcTest, ResumeFollowsDrain) {
  IncastHarness h(/*pfc=*/true, /*queue_bytes=*/60'000);
  h.Blast(50);
  h.sim.Run();
  // Every pause was eventually matched by a resume once queues drained.
  for (Switch* sw : h.topo.switches) {
    EXPECT_EQ(sw->stats().pfc_pauses_sent, sw->stats().pfc_resumes_sent) << sw->name();
    for (int p = 0; p < sw->port_count(); ++p) {
      EXPECT_EQ(sw->IngressBufferBytes(p), 0) << sw->name() << " port " << p;
    }
  }
}

TEST(PfcTest, IngressPauseLogMatchesPortAccounting) {
  // The per-interval pause export must agree with the aggregate counters it
  // sits beside: every resume closes exactly one interval, every paused
  // upstream port's interval log sums to its paused_time_ps, and the
  // switch-side per-ingress logs mirror the pause/resume frames it sent.
  IncastHarness h(/*pfc=*/true, /*queue_bytes=*/60'000);
  h.Blast(50);
  h.sim.Run();
  const TimePs now = h.sim.now();

  uint64_t pauses = 0;
  uint64_t resumes = 0;
  uint64_t closed_intervals = 0;
  bool any_overlap = false;
  for (Switch* sw : h.topo.switches) {
    pauses += sw->stats().pfc_pauses_sent;
    resumes += sw->stats().pfc_resumes_sent;
    for (int p = 0; p < sw->port_count(); ++p) {
      const PauseIntervalLog* log = sw->IngressPauseLog(p);
      if (log == nullptr) {
        continue;
      }
      EXPECT_FALSE(log->open()) << sw->name() << " port " << p;
      EXPECT_EQ(log->evicted(), 0u) << sw->name() << " port " << p;
      closed_intervals += log->size();
      if (sw->MaxIngressPauseOverlapPs(0, now) > 0) {
        any_overlap = true;
      }
    }
  }
  ASSERT_GT(pauses, 0u);  // it was a real incast
  EXPECT_EQ(pauses, resumes);
  EXPECT_EQ(closed_intervals, resumes);
  EXPECT_TRUE(any_overlap);

  // Upstream side: ports that were actually paused agree interval-by-
  // interval with their aggregate pause time.
  uint64_t paused_ports = 0;
  for (const DuplexLink& link : h.net.links()) {
    for (Port* port : {link.a.node->port(link.a.port), link.b.node->port(link.b.port)}) {
      if (port->stats().pause_transitions == 0) {
        EXPECT_EQ(port->pause_log().size(), 0u);
        continue;
      }
      ++paused_ports;
      EXPECT_FALSE(port->pause_log().open());
      EXPECT_EQ(port->pause_log().TotalPausedPs(now), port->PausedTimePs());
      EXPECT_EQ(port->PausedOverlapPs(0, now), port->PausedTimePs());
    }
  }
  EXPECT_GT(paused_ports, 0u);
}

TEST(PfcExperimentTest, ThresholdsAutoScaleWithRate) {
  ExperimentConfig config;
  config.num_tors = 2;
  config.num_spines = 2;
  config.hosts_per_tor = 2;
  config.link_rate = Rate::Gbps(100);
  Experiment exp(config);
  EXPECT_EQ(exp.config().pfc_xoff_bytes, 150 * 1024 / 4);
  EXPECT_EQ(exp.config().pfc_xon_bytes, 100 * 1024 / 4);
}

TEST(PfcExperimentTest, EcmpCollectiveIsLossless) {
  // The very scenario that drowned in drops without PFC: synchronized
  // elephant flows colliding under ECMP.
  ExperimentConfig config;
  config.num_tors = 4;
  config.num_spines = 4;
  config.hosts_per_tor = 4;
  config.link_rate = Rate::Gbps(100);
  config.scheme = Scheme::kEcmp;
  config.cc = CcKind::kDcqcn;
  config.dcqcn_ti = 55 * kMicrosecond;
  config.dcqcn_td = 50 * kMicrosecond;
  Experiment exp(config);
  auto result = exp.RunCollective(CollectiveKind::kAllreduce, exp.MakeCrossRackGroups(4),
                                  4 << 20, 10 * kSecond);
  ASSERT_TRUE(result.all_done);
  EXPECT_EQ(exp.TotalPortDrops(), 0u);
  EXPECT_EQ(exp.TotalTimeouts(), 0u);
}

TEST(PfcExperimentTest, DisablingPfcRestoresDropBehaviour) {
  ExperimentConfig config;
  config.num_tors = 2;
  config.num_spines = 2;
  config.hosts_per_tor = 4;
  config.link_rate = Rate::Gbps(100);
  config.scheme = Scheme::kEcmp;
  config.pfc_enabled = false;
  config.cc = CcKind::kFixedRate;  // no CC reaction: queues must overflow
  config.port_queue_bytes = 100 * 1024;
  config.ecn.enabled = false;
  Experiment exp(config);
  // 4:1 incast: everyone sends to rank 4.
  auto ops = std::vector<std::unique_ptr<CollectiveOp>>{};
  for (int s : {0, 1, 2, 3}) {
    exp.connections().GetChannel(s, 4).tx->PostMessage(2 << 20, nullptr);
  }
  exp.sim().RunUntil(50 * kMillisecond);
  EXPECT_GT(exp.TotalPortDrops(), 0u);
}

// --- Spurious-valid regression (ROADMAP "PFC-aware NACK validity") ------------

// The FCT smoke operating point where the artefact reproduces: a small
// 400 Gbps leaf-spine under an incast-heavy open-loop load. Pause storms
// delay same-path packets long enough that Eq. 3 convicts them as lost.
ExperimentConfig SpuriousValidFabric(bool grace) {
  ExperimentConfig config;
  config.seed = 42;
  config.num_tors = 2;
  config.num_spines = 2;
  config.hosts_per_tor = 4;
  config.link_rate = Rate::Gbps(400);
  config.scheme = Scheme::kThemis;
  config.themis_spray_mode = SprayMode::kTorEgress;
  config.pfc_enabled = true;
  config.themis_pause_grace = grace;
  return config;
}

FctWorkloadResult RunSpuriousValidWorkload(bool grace) {
  WorkloadSpec workload;
  workload.pattern = TrafficPattern::kIncastMix;
  workload.load = 0.6;
  workload.window = 200 * kMicrosecond;
  workload.incast_fanin = 4;
  workload.incast_fraction = 0.5;
  workload.seed = 42;
  workload.max_flows = 48;
  return RunFctWorkload(SpuriousValidFabric(grace), workload, FlowSizeCdf::AliStorage(),
                        /*deadline=*/workload.window * 40);
}

TEST(PfcGraceRegressionTest, GraceWindowEliminatesSpuriousValidNacks) {
  // Pre-fix behaviour (grace off): under PFC a large share of "valid" NACKs
  // are pause artefacts — the audit catches the original arriving later.
  const FctWorkloadResult before = RunSpuriousValidWorkload(/*grace=*/false);
  ASSERT_EQ(before.flows_completed, before.flows_total);
  ASSERT_GT(before.themis.nacks_forwarded_spurious, 0u);
  EXPECT_EQ(before.themis.grace_deferred, 0u);

  // Post-fix: the grace window defers those NACKs and the original's
  // arrival cancels them. Acceptance: >= 80% of the spurious-valid share is
  // gone (the --no-pfc baseline is zero, so this closes >= 80% of the gap).
  const FctWorkloadResult after = RunSpuriousValidWorkload(/*grace=*/true);
  ASSERT_EQ(after.flows_completed, after.flows_total);
  EXPECT_GT(after.themis.grace_deferred, 0u);
  EXPECT_LE(after.themis.nacks_forwarded_spurious * 5, before.themis.nacks_forwarded_spurious);

  // No regression in genuine-loss recovery: every deferral resolved (no
  // NACK parked forever), every flow still completed, and the tail did not
  // blow up relative to the pre-fix run.
  EXPECT_EQ(after.themis.grace_deferred,
            after.themis.grace_cancelled + after.themis.grace_expired);
  EXPECT_LE(after.slowdown.p99, before.slowdown.p99 * 1.25);
}

}  // namespace
}  // namespace themis
