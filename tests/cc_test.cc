// Unit tests for congestion control: DCQCN decrease/increase machinery,
// TI/TD knobs, alpha dynamics, NACK reaction.

#include <gtest/gtest.h>

#include "src/cc/congestion_control.h"
#include "src/cc/dcqcn.h"

namespace themis {
namespace {

DcqcnConfig TestConfig() {
  DcqcnConfig config;
  config.line_rate = Rate::Gbps(100);
  config.min_rate = Rate::Mbps(100);
  config.rate_increase_period = 300 * kMicrosecond;
  config.rate_decrease_interval = 4 * kMicrosecond;
  config.alpha_update_interval = 55 * kMicrosecond;
  return config;
}

TEST(FixedRateCcTest, HoldsRate) {
  FixedRateCc cc(Rate::Gbps(42));
  EXPECT_EQ(cc.rate(), Rate::Gbps(42));
  cc.OnCnp();
  cc.OnNack();
  EXPECT_EQ(cc.rate(), Rate::Gbps(42));
  cc.set_rate(Rate::Gbps(7));
  EXPECT_EQ(cc.rate(), Rate::Gbps(7));
}

TEST(DcqcnTest, StartsAtLineRate) {
  Simulator sim;
  DcqcnCc cc(&sim, TestConfig());
  EXPECT_EQ(cc.rate(), Rate::Gbps(100));
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
}

TEST(DcqcnTest, FirstCnpHalvesRate) {
  Simulator sim;
  DcqcnCc cc(&sim, TestConfig());
  cc.OnCnp();
  // alpha = 1 -> rate *= (1 - 1/2).
  EXPECT_EQ(cc.rate(), Rate::Gbps(50));
  EXPECT_EQ(cc.target_rate(), Rate::Gbps(100));
  EXPECT_EQ(cc.stats().rate_decreases, 1u);
}

TEST(DcqcnTest, TdSuppressesBackToBackDecreases) {
  Simulator sim;
  DcqcnCc cc(&sim, TestConfig());
  cc.OnCnp();
  const Rate after_first = cc.rate();
  cc.OnCnp();  // same instant: suppressed by TD
  EXPECT_EQ(cc.rate(), after_first);
  EXPECT_EQ(cc.stats().rate_decreases, 1u);

  // After TD elapses the next CNP cuts again.
  sim.Schedule(5 * kMicrosecond, [&] { cc.OnCnp(); });
  sim.RunUntil(6 * kMicrosecond);
  EXPECT_LT(cc.rate(), after_first);
  EXPECT_EQ(cc.stats().rate_decreases, 2u);
}

TEST(DcqcnTest, LargerTdMeansFewerDecreases) {
  for (const auto& [td_us, expected_cuts] : {std::pair<int64_t, uint64_t>{4, 10},
                                             std::pair<int64_t, uint64_t>{50, 2},
                                             std::pair<int64_t, uint64_t>{200, 1}}) {
    Simulator sim;
    DcqcnConfig config = TestConfig();
    config.rate_decrease_interval = td_us * kMicrosecond;
    DcqcnCc cc(&sim, config);
    // A CNP every 10 us for 100 us.
    for (int i = 0; i < 10; ++i) {
      sim.Schedule(i * 10 * kMicrosecond, [&] { cc.OnCnp(); });
    }
    sim.RunUntil(99 * kMicrosecond);
    EXPECT_EQ(cc.stats().rate_decreases, expected_cuts) << "TD=" << td_us << "us";
  }
}

TEST(DcqcnTest, NackTriggersDecreaseWhenEnabled) {
  Simulator sim;
  DcqcnCc cc(&sim, TestConfig());
  cc.OnNack();
  EXPECT_EQ(cc.rate(), Rate::Gbps(50));
  EXPECT_EQ(cc.stats().nack_decreases, 1u);
}

TEST(DcqcnTest, NackIgnoredWhenDisabled) {
  Simulator sim;
  DcqcnConfig config = TestConfig();
  config.react_to_nack = false;
  DcqcnCc cc(&sim, config);
  cc.OnNack();
  EXPECT_EQ(cc.rate(), Rate::Gbps(100));
  EXPECT_EQ(cc.stats().rate_decreases, 0u);
}

TEST(DcqcnTest, TimerDrivenFastRecovery) {
  Simulator sim;
  DcqcnConfig config = TestConfig();
  DcqcnCc cc(&sim, config);
  cc.OnCnp();  // rate 50, target 100
  // One TI period: fast recovery moves halfway to target.
  sim.RunUntil(sim.now() + config.rate_increase_period + kMicrosecond);
  EXPECT_EQ(cc.rate(), Rate::Gbps(75));
}

TEST(DcqcnTest, RecoveryApproachesLineRate) {
  Simulator sim;
  DcqcnConfig config = TestConfig();
  config.rate_increase_period = 10 * kMicrosecond;
  DcqcnCc cc(&sim, config);
  cc.OnCnp();
  sim.RunUntil(5 * kMillisecond);  // many increase periods, incl. AI/HAI
  EXPECT_GT(cc.rate(), Rate::Gbps(99));
  EXPECT_LE(cc.rate(), Rate::Gbps(100));
}

TEST(DcqcnTest, SmallerTiRecoversFaster) {
  auto rate_after = [](TimePs ti, TimePs horizon) {
    Simulator sim;
    DcqcnConfig config = TestConfig();
    config.rate_increase_period = ti;
    DcqcnCc cc(&sim, config);
    cc.OnCnp();
    sim.RunUntil(horizon);
    return cc.rate();
  };
  const Rate fast = rate_after(10 * kMicrosecond, 500 * kMicrosecond);
  const Rate slow = rate_after(900 * kMicrosecond, 500 * kMicrosecond);
  EXPECT_GT(fast, slow);
}

TEST(DcqcnTest, AlphaDecaysWithoutCnps) {
  Simulator sim;
  DcqcnCc cc(&sim, TestConfig());
  cc.OnCnp();
  const double alpha_after_cnp = cc.alpha();
  sim.RunUntil(sim.now() + 10 * 55 * kMicrosecond + kMicrosecond);
  EXPECT_LT(cc.alpha(), alpha_after_cnp);
}

TEST(DcqcnTest, LaterCutsAreGentler) {
  // After alpha decays, a cut removes less than half the rate.
  Simulator sim;
  DcqcnConfig config = TestConfig();
  DcqcnCc cc(&sim, config);
  cc.OnCnp();  // 50 Gbps, alpha ~1
  sim.RunUntil(6 * kMillisecond);  // recover + decay alpha
  const Rate before = cc.rate();
  sim.Schedule(0, [&] { cc.OnCnp(); });
  sim.RunUntil(sim.now() + 1);
  const double cut_fraction = 1.0 - static_cast<double>(cc.rate().bps()) /
                                        static_cast<double>(before.bps());
  EXPECT_LT(cut_fraction, 0.4);
}

TEST(DcqcnTest, RateNeverBelowMinRate) {
  Simulator sim;
  DcqcnConfig config = TestConfig();
  config.rate_decrease_interval = 0;
  DcqcnCc cc(&sim, config);
  for (int i = 0; i < 200; ++i) {
    cc.OnCnp();
  }
  EXPECT_GE(cc.rate(), config.min_rate);
}

TEST(DcqcnTest, ByteCounterDrivesIncreaseWithoutTimer) {
  Simulator sim;
  DcqcnConfig config = TestConfig();
  config.rate_increase_period = kSecond;  // timer effectively off
  config.byte_counter_bytes = 1000;
  DcqcnCc cc(&sim, config);
  cc.OnCnp();  // 50
  cc.OnPacketSent(1000);
  EXPECT_EQ(cc.rate(), Rate::Gbps(75));  // one byte-stage fast recovery
}

TEST(DcqcnTest, ShutdownStopsTimers) {
  Simulator sim;
  {
    DcqcnCc cc(&sim, TestConfig());
    cc.Shutdown();
  }
  // Draining must terminate: pending timer events are inert after Shutdown.
  const uint64_t executed = sim.Run();
  EXPECT_LE(executed, 4u);
}

}  // namespace
}  // namespace themis
