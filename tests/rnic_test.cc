// Unit tests for the RNIC model: packetization, pacing, NIC-SR / GBN /
// ideal receiver behaviour, NACK semantics (one per ePSN), retransmission,
// RTO, CNP generation, and the NIC scheduler.

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/rnic/rnic_host.h"

namespace themis {
namespace {

struct RnicHarness {
  Simulator sim;
  Network net{&sim};
  RnicHost* a = nullptr;
  RnicHost* b = nullptr;

  explicit RnicHarness(Rate rate = Rate::Gbps(100), TimePs delay = 1 * kMicrosecond) {
    a = net.MakeNode<RnicHost>("a");
    b = net.MakeNode<RnicHost>("b");
    LinkSpec spec;
    spec.rate = rate;
    spec.propagation_delay = delay;
    spec.queue_capacity_bytes = 8 << 20;
    net.Connect(a, b, spec);
  }

  static QpConfig Config(TransportKind transport = TransportKind::kNicSr) {
    QpConfig config;
    config.transport = transport;
    config.cc = CcKind::kFixedRate;
    config.fixed_rate = Rate::Gbps(100);
    config.mtu_bytes = 1500;
    return config;
  }

  struct Flow {
    SenderQp* tx;
    ReceiverQp* rx;
  };

  Flow MakeFlow(uint32_t flow_id, const QpConfig& config) {
    return Flow{a->CreateSenderQp(flow_id, b->id(), config),
                b->CreateReceiverQp(flow_id, a->id(), config)};
  }

  // For tests that pull packets from the QP by hand: the host's autonomous
  // scheduler must not race with the test.
  Flow MakeManualFlow(uint32_t flow_id, const QpConfig& config) {
    a->set_auto_schedule(false);
    return MakeFlow(flow_id, config);
  }
};

constexpr uint32_t kMtuPayload = 1500 - kHeaderBytes;  // 1436

// --- Sender packetization ----------------------------------------------------

TEST(SenderQpTest, SegmentsMessageIntoMtuPackets) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config());
  flow.tx->PostMessage(3 * kMtuPayload + 100, nullptr);

  std::vector<Packet> pkts;
  while (flow.tx->HasWork()) {
    pkts.push_back(flow.tx->DequeuePacket());
  }
  ASSERT_EQ(pkts.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pkts[i].psn, i);
  }
  EXPECT_EQ(pkts[0].payload_bytes, kMtuPayload);
  EXPECT_EQ(pkts[3].payload_bytes, 100u);  // short tail packet
  EXPECT_EQ(flow.tx->snd_nxt(), 4u);
}

TEST(SenderQpTest, ZeroByteMessageCompletesImmediately) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config());
  bool done = false;
  flow.tx->PostMessage(0, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_FALSE(flow.tx->HasWork());
}

TEST(SenderQpTest, WindowLimitsOutstandingBytes) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config();
  config.max_unacked_bytes = 3 * kMtuPayload;
  auto flow = h.MakeManualFlow(1, config);
  flow.tx->PostMessage(100 * kMtuPayload, nullptr);

  int sent = 0;
  while (flow.tx->HasWork()) {
    flow.tx->DequeuePacket();
    ++sent;
  }
  EXPECT_EQ(sent, 3);  // window closed

  // Cumulative ACK for one packet reopens the window.
  flow.tx->HandleAck(MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 1, 0));
  EXPECT_TRUE(flow.tx->HasWork());
}

TEST(SenderQpTest, CumulativeAckFiresCompletion) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config());
  bool done = false;
  flow.tx->PostMessage(2 * kMtuPayload, [&] { done = true; });
  flow.tx->DequeuePacket();
  flow.tx->DequeuePacket();
  EXPECT_FALSE(done);

  flow.tx->HandleAck(MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 2, 0));
  EXPECT_TRUE(done);
  EXPECT_TRUE(flow.tx->AllCompleted());
  EXPECT_EQ(flow.tx->unacked_bytes(), 0);
}

TEST(SenderQpTest, SelectiveRepeatRetransmitsOnlyNackedPsn) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config(TransportKind::kNicSr));
  flow.tx->PostMessage(5 * kMtuPayload, nullptr);
  for (int i = 0; i < 5; ++i) {
    flow.tx->DequeuePacket();
  }
  EXPECT_FALSE(flow.tx->HasWork());

  flow.tx->HandleNack(MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 2, 0));
  ASSERT_TRUE(flow.tx->HasWork());
  Packet rtx = flow.tx->DequeuePacket();
  EXPECT_EQ(rtx.psn, 2u);
  EXPECT_TRUE(rtx.retransmission);
  EXPECT_FALSE(flow.tx->HasWork());  // only one packet retransmitted
  EXPECT_EQ(flow.tx->stats().rtx_packets, 1u);
}

TEST(SenderQpTest, GoBackNRetransmitsTail) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config(TransportKind::kGoBackN));
  flow.tx->PostMessage(5 * kMtuPayload, nullptr);
  for (int i = 0; i < 5; ++i) {
    flow.tx->DequeuePacket();
  }
  flow.tx->HandleNack(MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 2, 0));

  std::vector<uint32_t> rtx_psns;
  while (flow.tx->HasWork()) {
    rtx_psns.push_back(flow.tx->DequeuePacket().psn);
  }
  EXPECT_EQ(rtx_psns, (std::vector<uint32_t>{2, 3, 4}));
}

TEST(SenderQpTest, NackCumulativelyAcknowledges) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config());
  flow.tx->PostMessage(5 * kMtuPayload, nullptr);
  for (int i = 0; i < 5; ++i) {
    flow.tx->DequeuePacket();
  }
  flow.tx->HandleNack(MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 3, 0));
  EXPECT_EQ(flow.tx->snd_una(), 3u);
}

TEST(SenderQpTest, DuplicateNackDoesNotDuplicateRetransmit) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config());
  flow.tx->PostMessage(5 * kMtuPayload, nullptr);
  for (int i = 0; i < 5; ++i) {
    flow.tx->DequeuePacket();
  }
  flow.tx->HandleNack(MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 2, 0));
  flow.tx->HandleNack(MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 2, 0));
  int rtx = 0;
  while (flow.tx->HasWork()) {
    flow.tx->DequeuePacket();
    ++rtx;
  }
  EXPECT_EQ(rtx, 1);
}

TEST(SenderQpTest, AckedPsnNotRetransmitted) {
  RnicHarness h;
  auto flow = h.MakeManualFlow(1, RnicHarness::Config());
  flow.tx->PostMessage(5 * kMtuPayload, nullptr);
  for (int i = 0; i < 5; ++i) {
    flow.tx->DequeuePacket();
  }
  flow.tx->HandleNack(MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 2, 0));
  // ACK covering psn 2 arrives before the retransmit leaves.
  flow.tx->HandleAck(MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 5, 0));
  EXPECT_FALSE(flow.tx->HasWork());
}

TEST(SenderQpTest, NackCutsDcqcnRate) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config();
  config.cc = CcKind::kDcqcn;
  config.dcqcn.line_rate = Rate::Gbps(100);
  auto flow = h.MakeManualFlow(1, config);
  flow.tx->PostMessage(5 * kMtuPayload, nullptr);
  for (int i = 0; i < 5; ++i) {
    flow.tx->DequeuePacket();
  }
  EXPECT_EQ(flow.tx->cc().rate(), Rate::Gbps(100));
  flow.tx->HandleNack(MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 2, 0));
  EXPECT_EQ(flow.tx->cc().rate(), Rate::Gbps(50));
}

TEST(SenderQpTest, PacingGapMatchesCcRate) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config();
  config.fixed_rate = Rate::Gbps(50);  // half the 100G line
  auto flow = h.MakeManualFlow(1, config);
  flow.tx->PostMessage(2 * kMtuPayload, nullptr);
  flow.tx->DequeuePacket();
  // 1500 B at 50 Gbps = 240 ns pacing gap.
  EXPECT_EQ(flow.tx->next_eligible(), h.sim.now() + 240 * kNanosecond);
}

TEST(SenderQpTest, RtoRetransmitsOldestUnacked) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config();
  config.retransmit_timeout = 100 * kMicrosecond;
  auto flow = h.MakeManualFlow(1, config);
  flow.tx->PostMessage(2 * kMtuPayload, nullptr);
  flow.tx->DequeuePacket();
  flow.tx->DequeuePacket();

  h.sim.RunUntil(150 * kMicrosecond);
  ASSERT_TRUE(flow.tx->HasWork());
  EXPECT_EQ(flow.tx->DequeuePacket().psn, 0u);
  EXPECT_EQ(flow.tx->stats().timeouts, 1u);
}

TEST(SenderQpTest, NoRtoAfterFullAck) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config();
  config.retransmit_timeout = 100 * kMicrosecond;
  auto flow = h.MakeManualFlow(1, config);
  flow.tx->PostMessage(kMtuPayload, nullptr);
  flow.tx->DequeuePacket();
  flow.tx->HandleAck(MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 1, 0));
  h.sim.RunUntil(kMillisecond);
  EXPECT_EQ(flow.tx->stats().timeouts, 0u);
  EXPECT_FALSE(flow.tx->HasWork());
}

// --- Receiver behaviour -------------------------------------------------------

Packet Data(uint32_t flow, const RnicHarness& h, uint32_t psn, uint32_t payload = kMtuPayload) {
  return MakeDataPacket(flow, h.a->id(), h.b->id(), psn, payload, 0x1234);
}

TEST(ReceiverQpTest, InOrderAdvancesEpsnAndAcks) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config());
  for (uint32_t psn = 0; psn < 5; ++psn) {
    h.b->ReceivePacket(Data(1, h, psn), 0);
  }
  EXPECT_EQ(flow.rx->epsn(), 5u);
  EXPECT_EQ(flow.rx->stats().acks_sent, 5u);
  EXPECT_EQ(flow.rx->stats().nacks_sent, 0u);
  EXPECT_EQ(flow.rx->in_order_bytes(), 5ull * kMtuPayload);
}

TEST(ReceiverQpTest, NicSrOooTriggersSingleNackPerEpsn) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kNicSr));
  h.b->ReceivePacket(Data(1, h, 0), 0);
  // PSNs 2, 3, 4 arrive while 1 is missing: exactly one NACK (for ePSN=1).
  h.b->ReceivePacket(Data(1, h, 2), 0);
  h.b->ReceivePacket(Data(1, h, 3), 0);
  h.b->ReceivePacket(Data(1, h, 4), 0);
  EXPECT_EQ(flow.rx->stats().nacks_sent, 1u);
  EXPECT_EQ(flow.rx->stats().ooo_arrivals, 3u);
  EXPECT_EQ(flow.rx->epsn(), 1u);
}

TEST(ReceiverQpTest, NicSrEpsnCatchesUpOverBitmap) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kNicSr));
  h.b->ReceivePacket(Data(1, h, 1), 0);
  h.b->ReceivePacket(Data(1, h, 2), 0);
  h.b->ReceivePacket(Data(1, h, 3), 0);
  EXPECT_EQ(flow.rx->epsn(), 0u);
  h.b->ReceivePacket(Data(1, h, 0), 0);  // fills the gap
  EXPECT_EQ(flow.rx->epsn(), 4u);
  EXPECT_EQ(flow.rx->in_order_bytes(), 4ull * kMtuPayload);
}

TEST(ReceiverQpTest, NicSrNewEpsnGetsNewNack) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kNicSr));
  h.b->ReceivePacket(Data(1, h, 1), 0);  // NACK for ePSN 0
  h.b->ReceivePacket(Data(1, h, 0), 0);  // ePSN -> 2
  h.b->ReceivePacket(Data(1, h, 3), 0);  // NACK for ePSN 2
  EXPECT_EQ(flow.rx->stats().nacks_sent, 2u);
}

TEST(ReceiverQpTest, DuplicateOfDeliveredPacketCountedAndAcked) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kNicSr));
  h.b->ReceivePacket(Data(1, h, 0), 0);
  h.b->ReceivePacket(Data(1, h, 0), 0);
  EXPECT_EQ(flow.rx->stats().duplicates, 1u);
  EXPECT_EQ(flow.rx->stats().acks_sent, 2u);
  EXPECT_EQ(flow.rx->in_order_bytes(), 1ull * kMtuPayload);  // counted once
}

TEST(ReceiverQpTest, DuplicateInBitmapCounted) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kNicSr));
  h.b->ReceivePacket(Data(1, h, 2), 0);
  h.b->ReceivePacket(Data(1, h, 2), 0);  // spurious retransmission
  EXPECT_EQ(flow.rx->stats().duplicates, 1u);
}

TEST(ReceiverQpTest, GoBackNDropsOoo) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kGoBackN));
  h.b->ReceivePacket(Data(1, h, 1), 0);
  h.b->ReceivePacket(Data(1, h, 2), 0);
  EXPECT_EQ(flow.rx->stats().dropped_ooo, 2u);
  EXPECT_EQ(flow.rx->stats().nacks_sent, 1u);
  // The dropped data must be retransmitted: receiving 0 then 1 then 2 again.
  h.b->ReceivePacket(Data(1, h, 0), 0);
  EXPECT_EQ(flow.rx->epsn(), 1u);  // 1 and 2 were NOT buffered
  h.b->ReceivePacket(Data(1, h, 1), 0);
  h.b->ReceivePacket(Data(1, h, 2), 0);
  EXPECT_EQ(flow.rx->epsn(), 3u);
}

TEST(ReceiverQpTest, IdealNeverNacks) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kIdeal));
  h.b->ReceivePacket(Data(1, h, 3), 0);
  h.b->ReceivePacket(Data(1, h, 1), 0);
  h.b->ReceivePacket(Data(1, h, 2), 0);
  h.b->ReceivePacket(Data(1, h, 0), 0);
  EXPECT_EQ(flow.rx->stats().nacks_sent, 0u);
  EXPECT_EQ(flow.rx->epsn(), 4u);
}

TEST(ReceiverQpTest, CnpOnCeMarkRespectsInterval) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config();
  config.cnp_interval = 50 * kMicrosecond;
  auto flow = h.MakeFlow(1, config);

  Packet marked = Data(1, h, 0);
  marked.ecn_ce = true;
  h.b->ReceivePacket(marked, 0);
  Packet marked2 = Data(1, h, 1);
  marked2.ecn_ce = true;
  h.b->ReceivePacket(marked2, 0);  // same instant: suppressed
  EXPECT_EQ(flow.rx->stats().cnps_sent, 1u);
  EXPECT_EQ(flow.rx->stats().ce_marked, 2u);

  h.sim.Schedule(60 * kMicrosecond, [&] {
    Packet marked3 = Data(1, h, 2);
    marked3.ecn_ce = true;
    h.b->ReceivePacket(marked3, 0);
  });
  h.sim.RunUntil(70 * kMicrosecond);
  EXPECT_EQ(flow.rx->stats().cnps_sent, 2u);
}

TEST(ReceiverQpTest, ExpectMessageDeliversAtBoundary) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config());
  int delivered = 0;
  flow.rx->ExpectMessage(2 * kMtuPayload, [&] { ++delivered; });
  flow.rx->ExpectMessage(kMtuPayload, [&] { ++delivered; });

  h.b->ReceivePacket(Data(1, h, 0), 0);
  EXPECT_EQ(delivered, 0);
  h.b->ReceivePacket(Data(1, h, 1), 0);
  EXPECT_EQ(delivered, 1);
  h.b->ReceivePacket(Data(1, h, 2), 0);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(flow.rx->stats().messages_delivered, 2u);
}

TEST(ReceiverQpTest, PsnWraparoundHandled) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config());
  // Start the receiver just before wrap by feeding it the whole tail... too
  // slow; instead exercise serial arithmetic directly around the boundary.
  // Simulate epsn near the wrap by sending the final PSNs of the space.
  // (The receiver starts at 0, so drive it with OOO packets around wrap.)
  h.b->ReceivePacket(Data(1, h, 0), 0);
  EXPECT_EQ(flow.rx->epsn(), 1u);
  // A stale duplicate "from the previous wrap" (psn = 2^24 - 1) must be
  // treated as old (psn < epsn), not as far-future OOO.
  h.b->ReceivePacket(Data(1, h, kPsnMask), 0);
  EXPECT_EQ(flow.rx->stats().duplicates, 1u);
  EXPECT_EQ(flow.rx->epsn(), 1u);
}

// --- IRN transport -------------------------------------------------------------

TEST(IrnTest, NackCarriesTriggerPsn) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kIrn));
  h.b->ReceivePacket(Data(1, h, 3), 0);  // 0,1,2 missing
  h.sim.Run();
  // The NACK reached a's sender QP (unknown-flow drops would count).
  EXPECT_EQ(h.b->receiver_qp(1)->stats().nacks_sent, 1u);
}

TEST(IrnTest, SenderRetransmitsExactGap) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kIrn));
  h.a->set_auto_schedule(false);
  flow.tx->PostMessage(6 * kMtuPayload, nullptr);
  for (int i = 0; i < 6; ++i) {
    flow.tx->DequeuePacket();
  }
  Packet nack = MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 1, 0);
  nack.aux_psn = 4;  // receiver saw 0 then 4: gap is [1, 4)
  flow.tx->HandleNack(nack);

  std::vector<uint32_t> rtx;
  while (flow.tx->HasWork()) {
    rtx.push_back(flow.tx->DequeuePacket().psn);
  }
  EXPECT_EQ(rtx, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(IrnTest, RepeatedNacksDoNotRefireGap) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kIrn));
  h.a->set_auto_schedule(false);
  flow.tx->PostMessage(6 * kMtuPayload, nullptr);
  for (int i = 0; i < 6; ++i) {
    flow.tx->DequeuePacket();
  }
  Packet nack = MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 1, 0);
  nack.aux_psn = 3;
  flow.tx->HandleNack(nack);
  nack.aux_psn = 5;  // second NACK for an overlapping gap
  flow.tx->HandleNack(nack);

  int rtx = 0;
  while (flow.tx->HasWork()) {
    flow.tx->DequeuePacket();
    ++rtx;
  }
  EXPECT_EQ(rtx, 4);  // 1,2 then 3,4 — never 1,2 twice
}

TEST(IrnTest, NackDoesNotCutRate) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config(TransportKind::kIrn);
  config.cc = CcKind::kDcqcn;
  config.dcqcn.line_rate = Rate::Gbps(100);
  auto flow = h.MakeFlow(1, config);
  h.a->set_auto_schedule(false);
  flow.tx->PostMessage(4 * kMtuPayload, nullptr);
  for (int i = 0; i < 4; ++i) {
    flow.tx->DequeuePacket();
  }
  Packet nack = MakeControlPacket(PacketType::kNack, 1, h.b->id(), h.a->id(), 0, 0);
  nack.aux_psn = 2;
  flow.tx->HandleNack(nack);
  EXPECT_EQ(flow.tx->cc().rate(), Rate::Gbps(100));  // IRN decouples loss from CC
}

TEST(IrnTest, EndToEndUnderReorderCompletes) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kIrn));
  bool received = false;
  flow.rx->ExpectMessage(1 << 20, [&] { received = true; });
  flow.tx->PostMessage(1 << 20, nullptr);
  h.sim.Run();
  EXPECT_TRUE(received);
}

// --- Multipath (MPRDMA-style) transport -----------------------------------------

TEST(MultipathTest, NeverNacks) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kMultipath));
  h.b->ReceivePacket(Data(1, h, 5), 0);
  h.b->ReceivePacket(Data(1, h, 3), 0);
  h.b->ReceivePacket(Data(1, h, 9), 0);
  EXPECT_EQ(flow.rx->stats().nacks_sent, 0u);
  EXPECT_EQ(flow.rx->stats().acks_sent, 3u);
}

TEST(MultipathTest, SackDepthTriggersHeadRetransmit) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config(TransportKind::kMultipath);
  config.multipath_reorder_threshold = 4;
  auto flow = h.MakeFlow(1, config);
  h.a->set_auto_schedule(false);
  flow.tx->PostMessage(10 * kMtuPayload, nullptr);
  for (int i = 0; i < 10; ++i) {
    flow.tx->DequeuePacket();
  }
  // Packet 0 lost; SACKs arrive for 1..5. Depth exceeds 4 at SACK(5).
  for (uint32_t psn = 1; psn <= 4; ++psn) {
    Packet ack = MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 0, 0);
    ack.aux_psn = psn;
    flow.tx->HandleAck(ack);
    EXPECT_FALSE(flow.tx->HasWork()) << "premature retransmit at sack " << psn;
  }
  Packet ack = MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 0, 0);
  ack.aux_psn = 5;
  flow.tx->HandleAck(ack);
  ASSERT_TRUE(flow.tx->HasWork());
  EXPECT_EQ(flow.tx->DequeuePacket().psn, 0u);
  EXPECT_FALSE(flow.tx->HasWork());  // exactly one head retransmit
}

TEST(MultipathTest, HeadRetransmitRearmsPerHole) {
  RnicHarness h;
  QpConfig config = RnicHarness::Config(TransportKind::kMultipath);
  config.multipath_reorder_threshold = 2;
  auto flow = h.MakeFlow(1, config);
  h.a->set_auto_schedule(false);
  flow.tx->PostMessage(10 * kMtuPayload, nullptr);
  for (int i = 0; i < 10; ++i) {
    flow.tx->DequeuePacket();
  }
  // Holes at 0 and 5. First: sacks 1..3 -> rtx 0.
  for (uint32_t psn : {1u, 2u, 3u}) {
    Packet ack = MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 0, 0);
    ack.aux_psn = psn;
    flow.tx->HandleAck(ack);
  }
  ASSERT_TRUE(flow.tx->HasWork());
  EXPECT_EQ(flow.tx->DequeuePacket().psn, 0u);
  // Hole 0 repaired: cumulative jumps to 5. Then sacks 6..8 -> rtx 5.
  Packet cum = MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 5, 0);
  cum.aux_psn = 0;
  flow.tx->HandleAck(cum);
  for (uint32_t psn : {6u, 7u, 8u}) {
    Packet ack = MakeControlPacket(PacketType::kAck, 1, h.b->id(), h.a->id(), 5, 0);
    ack.aux_psn = psn;
    flow.tx->HandleAck(ack);
  }
  ASSERT_TRUE(flow.tx->HasWork());
  EXPECT_EQ(flow.tx->DequeuePacket().psn, 5u);
}

TEST(MultipathTest, EndToEndCompletes) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config(TransportKind::kMultipath));
  bool received = false;
  flow.rx->ExpectMessage(1 << 20, [&] { received = true; });
  flow.tx->PostMessage(1 << 20, nullptr);
  h.sim.Run();
  EXPECT_TRUE(received);
  EXPECT_EQ(flow.tx->stats().rtx_packets, 0u);
}

// --- Host dispatch & scheduler ------------------------------------------------

TEST(RnicHostTest, UnknownFlowCounted) {
  RnicHarness h;
  h.b->ReceivePacket(Data(99, h, 0), 0);
  EXPECT_EQ(h.b->stats().unknown_flow_drops, 1u);
}

TEST(RnicHostTest, EndToEndMessageDelivery) {
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config());
  bool sent = false;
  bool received = false;
  flow.rx->ExpectMessage(1 << 20, [&] { received = true; });
  flow.tx->PostMessage(1 << 20, [&] { sent = true; });
  h.sim.Run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(received);
  EXPECT_EQ(flow.rx->in_order_bytes(), 1u << 20);
  EXPECT_EQ(flow.tx->stats().rtx_packets, 0u);
  EXPECT_EQ(flow.rx->stats().nacks_sent, 0u);
}

TEST(RnicHostTest, ThroughputMatchesLineRateOnCleanPath) {
  RnicHarness h(Rate::Gbps(100), 1 * kMicrosecond);
  auto flow = h.MakeFlow(1, RnicHarness::Config());
  constexpr uint64_t kBytes = 8 << 20;
  flow.tx->PostMessage(kBytes, nullptr);
  h.sim.Run();
  // Measure to the completion ACK (sim.now() may include inert timer
  // events draining after the transfer finished).
  const double seconds = ToSeconds(flow.tx->stats().last_completion_time);
  const double goodput_gbps = static_cast<double>(kBytes) * 8 / seconds / 1e9;
  // Payload goodput ~= line rate x payload/wire efficiency (1436/1500).
  EXPECT_GT(goodput_gbps, 90.0);
  EXPECT_LT(goodput_gbps, 96.0);
}

TEST(RnicHostTest, SchedulerSharesLineBetweenQps) {
  RnicHarness h(Rate::Gbps(100), 1 * kMicrosecond);
  auto f1 = h.MakeFlow(1, RnicHarness::Config());
  auto f2 = h.MakeFlow(2, RnicHarness::Config());
  constexpr uint64_t kBytes = 2 << 20;
  f1.tx->PostMessage(kBytes, nullptr);
  f2.tx->PostMessage(kBytes, nullptr);
  h.sim.Run();
  // Both QPs pace at 100G but share one 100G line: finish together, with
  // roughly equal service.
  const uint64_t sent1 = f1.tx->stats().data_bytes_sent;
  const uint64_t sent2 = f2.tx->stats().data_bytes_sent;
  EXPECT_NEAR(static_cast<double>(sent1) / static_cast<double>(sent2), 1.0, 0.01);
  EXPECT_EQ(f1.rx->in_order_bytes(), kBytes);
  EXPECT_EQ(f2.rx->in_order_bytes(), kBytes);
}

TEST(RnicHostTest, LossRecoveredByNackOnSinglePath) {
  // Single path: OOO arrivals at the receiver genuinely mean loss, NIC-SR
  // recovers via NACK + selective retransmit without any timeout.
  RnicHarness h;
  auto flow = h.MakeFlow(1, RnicHarness::Config());
  flow.tx->PostMessage(10 * kMtuPayload, nullptr);

  // Drop the third data packet (psn 2) on the wire once: packets are paced
  // every 120 ns and arrive at k*120 + 120 + 1000 ns; fail the port around
  // psn 2's arrival instant (1360 ns) only.
  h.sim.Schedule(1355 * kNanosecond, [&] { h.a->uplink()->set_failed(true); });
  h.sim.Schedule(1365 * kNanosecond, [&] { h.a->uplink()->set_failed(false); });
  h.sim.Run();

  EXPECT_EQ(flow.rx->in_order_bytes(), 10ull * kMtuPayload);
  EXPECT_GE(flow.tx->stats().rtx_packets, 1u);
  EXPECT_GE(flow.rx->stats().nacks_sent, 1u);
}

}  // namespace
}  // namespace themis
