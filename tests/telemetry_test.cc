// Telemetry subsystem tests: trace ring semantics, counter registry,
// sampler/export plumbing, the lazy logging macro, and the end-to-end
// contract that a traced workload produces the promised columns.
//
// Trace-content assertions GTEST_SKIP under THEMIS_TRACE=OFF builds — the
// record sites compile to nothing there, which is exactly the point.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/sim/logging.h"
#include "src/telemetry/counters.h"
#include "src/telemetry/export.h"
#include "src/telemetry/sampler.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/workload/flow_driver.h"

namespace themis {
namespace {

// --- TraceSink ring ----------------------------------------------------------

TEST(TraceSinkTest, RecordsInOrderAndReportsCounts) {
  TraceSink sink(/*capacity=*/8);
  for (uint32_t i = 0; i < 5; ++i) {
    sink.Record(static_cast<TimePs>(i * 100), TraceCategory::kPort,
                static_cast<uint8_t>(PortTrace::kEnqueue), /*node=*/1, /*port=*/0,
                /*id=*/i, /*a=*/i, /*b=*/0);
  }
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.overwritten(), 0u);
  for (size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink.at(i).time, static_cast<TimePs>(i * 100));
    EXPECT_EQ(sink.at(i).id, static_cast<uint32_t>(i));
  }
}

TEST(TraceSinkTest, RingEvictsOldestOnWrap) {
  TraceSink sink(/*capacity=*/4);
  for (uint32_t i = 0; i < 10; ++i) {
    sink.Record(static_cast<TimePs>(i), TraceCategory::kRnic,
                static_cast<uint8_t>(RnicTrace::kSend), 0, 0, i, 0, 0);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.overwritten(), 6u);
  // The survivors are the newest four, still in chronological order.
  std::vector<uint32_t> ids;
  sink.ForEach([&ids](const TraceEvent& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<uint32_t>{6, 7, 8, 9}));
}

TEST(TraceSinkTest, CategoryMaskFiltersRecording) {
  TraceSink sink(/*capacity=*/16);
  sink.set_category_mask(TraceCategoryBit(TraceCategory::kThemis));
  EXPECT_TRUE(sink.Accepts(TraceCategory::kThemis));
  EXPECT_FALSE(sink.Accepts(TraceCategory::kPort));
  EXPECT_FALSE(sink.Accepts(TraceCategory::kCc));
}

TEST(TraceSinkTest, RecordHelperIsSafeWithNoSinkAttached) {
  Simulator sim;
  ASSERT_EQ(sim.trace_sink(), nullptr);
  // Must be a no-op, not a crash, whether or not tracing is compiled in.
  TracePort(&sim, PortTrace::kEnqueue, 0, 0, 1, 2, 3);
  TraceRnic(&sim, RnicTrace::kSend, 0, 1, 2, 3);
}

TEST(TraceSinkTest, RecordHelperRoutesThroughSimulator) {
  if (!kTraceCompiledIn) {
    GTEST_SKIP() << "built with THEMIS_TRACE=OFF";
  }
  Simulator sim;
  TraceSink sink(/*capacity=*/16);
  sim.set_trace_sink(&sink);
  TraceThemis(&sim, ThemisTrace::kNackValid, /*node=*/7, /*flow_id=*/42, /*a=*/5, /*b=*/3);
  sim.set_trace_sink(nullptr);
  TraceThemis(&sim, ThemisTrace::kNackValid, 7, 42, 5, 3);  // detached: dropped
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).category, static_cast<uint8_t>(TraceCategory::kThemis));
  EXPECT_EQ(sink.at(0).code, static_cast<uint8_t>(ThemisTrace::kNackValid));
  EXPECT_EQ(sink.at(0).node, 7);
  EXPECT_EQ(sink.at(0).id, 42u);
}

TEST(TraceSinkTest, EventNamesAreStable) {
  EXPECT_STREQ(TraceEventName(TraceCategory::kPort,
                              static_cast<uint8_t>(PortTrace::kPauseOn)),
               "port.pause_on");
  EXPECT_STREQ(TraceEventName(TraceCategory::kThemis,
                              static_cast<uint8_t>(ThemisTrace::kSpuriousValid)),
               "themis.spurious_valid");
  EXPECT_STREQ(TraceEventName(TraceCategory::kCc,
                              static_cast<uint8_t>(CcTrace::kRateCut)),
               "cc.rate_cut");
}

// --- CounterRegistry / sampler ----------------------------------------------

TEST(CounterRegistryTest, CountersAndGaugesReadThrough) {
  CounterRegistry registry;
  uint64_t drops = 0;
  double depth = 1.5;
  registry.RegisterCounter("tor0.p0.drops", &drops);
  registry.RegisterGauge("tor0.p0.depth", [&depth] { return depth; });
  ASSERT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Read(0), 0.0);
  drops = 17;
  depth = 3.25;
  EXPECT_EQ(registry.Read(0), 17.0);
  EXPECT_EQ(registry.Read(1), 3.25);
  EXPECT_EQ(registry.Find("tor0.p0.depth"), 1);
  EXPECT_EQ(registry.Find("nope"), -1);
}

TEST(CounterSamplerTest, PeriodicSamplingBuildsAlignedSeries) {
  Simulator sim;
  CounterRegistry registry;
  uint64_t counter = 0;
  registry.RegisterCounter("c", &counter);
  CounterSampler sampler(&sim, &registry);
  sim.Schedule(5 * kMicrosecond, [&counter] { counter = 10; });
  sim.Schedule(15 * kMicrosecond, [&counter] { counter = 20; });
  sampler.Start(10 * kMicrosecond);
  sim.RunUntil(35 * kMicrosecond);
  sampler.Stop();
  ASSERT_EQ(sampler.sample_times().size(), 3u);  // t=10,20,30us
  ASSERT_EQ(sampler.series_count(), 1u);
  EXPECT_EQ(sampler.series(0).samples()[0].value, 10.0);
  EXPECT_EQ(sampler.series(0).samples()[1].value, 20.0);
  EXPECT_EQ(sampler.series(0).samples()[2].value, 20.0);
}

TEST(CounterSamplerTest, LateRegisteredCountersZeroFillInCsv) {
  Simulator sim;
  CounterRegistry registry;
  uint64_t early = 1;
  uint64_t late = 99;
  registry.RegisterCounter("early", &early);
  CounterSampler sampler(&sim, &registry);
  sampler.SampleNow();  // tick 1: only `early` exists
  sim.RunUntil(1 * kMicrosecond);
  registry.RegisterCounter("late", &late);
  sampler.SampleNow();  // tick 2: both
  std::ostringstream csv;
  WriteCountersCsv(sampler, csv);
  const std::string text = csv.str();
  // Header row has both columns; the first data row zero-fills `late`.
  EXPECT_NE(text.find("time_us,early,late"), std::string::npos);
  std::istringstream lines(text);
  std::string header, row1, row2;
  std::getline(lines, header);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.substr(row1.rfind(',') + 1), "0");
  EXPECT_EQ(row2.substr(row2.rfind(',') + 1), "99");
}

// --- Exporters ---------------------------------------------------------------

TEST(ExportTest, ChromeTraceIsWellFormedJson) {
  TraceSink sink(/*capacity=*/16);
  sink.Record(1 * kMicrosecond, TraceCategory::kPort,
              static_cast<uint8_t>(PortTrace::kDrop), /*node=*/3, /*port=*/1,
              /*id=*/7, /*a=*/1500, /*b=*/0);
  std::ostringstream out;
  WriteChromeTrace(sink, out, [](uint16_t node) { return std::string("tor") + std::to_string(node); });
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"port.drop\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000000"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("tor3"), std::string::npos);
  // Balanced braces as a cheap structural check.
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
}

// --- Telemetry bundle + end-to-end workload ---------------------------------

TEST(TelemetryBundleTest, AttachesAndDetachesSink) {
  Simulator sim;
  {
    Telemetry telemetry(&sim);
    if (kTraceCompiledIn) {
      EXPECT_EQ(sim.trace_sink(), &telemetry.trace());
    } else {
      EXPECT_EQ(sim.trace_sink(), nullptr);
    }
  }
  EXPECT_EQ(sim.trace_sink(), nullptr);  // dtor must detach
}

// Small incast-ish Themis workload with telemetry attached: the counters CSV
// must contain the promised per-port pause-time and per-flow NACK-verdict
// columns, and the trace must carry events from every category.
TEST(TelemetryBundleTest, TracedWorkloadProducesPromisedColumns) {
  ExperimentConfig config;
  config.seed = 42;
  config.num_tors = 2;
  config.num_spines = 2;
  config.hosts_per_tor = 4;
  config.link_rate = Rate::Gbps(100);
  config.scheme = Scheme::kThemis;

  WorkloadSpec workload;
  workload.pattern = TrafficPattern::kIncastMix;
  workload.load = 0.6;
  workload.window = 100 * kMicrosecond;
  workload.incast_fanin = 4;
  workload.seed = 42;
  workload.max_flows = 32;

  Experiment exp(config);
  Telemetry telemetry(&exp.sim());
  exp.AttachTelemetry(&telemetry);
  telemetry.StartSampling();
  std::vector<FlowSpec> flows =
      GenerateFlows(workload, FlowSizeCdf::AliStorage(), exp.host_count(), exp.edge_rate());
  FlowDriver driver(&exp, std::move(flows));
  driver.Post();
  exp.sim().RunUntil(workload.window * 40);
  telemetry.StopSampling();
  telemetry.sampler().SampleNow();
  ASSERT_TRUE(driver.AllDone());

  std::ostringstream csv;
  WriteCountersCsv(telemetry.sampler(), csv);
  const std::string header = csv.str().substr(0, csv.str().find('\n'));
  EXPECT_NE(header.find(".pause_us"), std::string::npos);
  EXPECT_NE(header.find(".queue_bytes"), std::string::npos);
  EXPECT_NE(header.find(".nack_valid"), std::string::npos);
  EXPECT_NE(header.find(".nack_spurious"), std::string::npos);
  EXPECT_NE(header.find(".bepsn_lag"), std::string::npos);
  EXPECT_NE(header.find(".ooo_depth"), std::string::npos);

  if (!kTraceCompiledIn) {
    GTEST_SKIP() << "built with THEMIS_TRACE=OFF; counters verified";
  }
  EXPECT_GT(telemetry.trace().recorded(), 0u);
  bool saw_port = false, saw_rnic = false, saw_themis = false;
  telemetry.trace().ForEach([&](const TraceEvent& e) {
    switch (static_cast<TraceCategory>(e.category)) {
      case TraceCategory::kPort:
        saw_port = true;
        break;
      case TraceCategory::kRnic:
        saw_rnic = true;
        break;
      case TraceCategory::kThemis:
        saw_themis = true;
        break;
      default:
        break;
    }
  });
  EXPECT_TRUE(saw_port);
  EXPECT_TRUE(saw_rnic);
  EXPECT_TRUE(saw_themis);
}

// --- Lazy logging ------------------------------------------------------------

TEST(LazyLoggingTest, ArgumentsNotEvaluatedWhenDisabled) {
  Logger& logger = Logger::Global();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kNone);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  THEMIS_LOG(LogLevel::kDebug, 0, "value=%d", expensive());
  EXPECT_EQ(evaluations, 0);  // the whole argument list must be skipped
  logger.set_level(saved);
}

TEST(LazyLoggingTest, FormatsWhenEnabled) {
  Logger& logger = Logger::Global();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kDebug);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 7;
  };
  THEMIS_LOG(LogLevel::kDebug, 1 * kMicrosecond, "flow %d retried", expensive());
  EXPECT_EQ(evaluations, 1);
  logger.set_level(saved);
}

}  // namespace
}  // namespace themis
