// Unit tests for the network substrate: PSN arithmetic, packets, ports,
// queues, ECN marking, link wiring.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/ecn.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/net/port.h"
#include "src/net/psn.h"

namespace themis {
namespace {

// --- PSN serial arithmetic --------------------------------------------------

TEST(PsnTest, WrapMasksTo24Bits) {
  EXPECT_EQ(PsnWrap(kPsnSpace), 0u);
  EXPECT_EQ(PsnWrap(kPsnSpace + 5), 5u);
  EXPECT_EQ(PsnWrap(0x12FFFFFF), 0xFFFFFFu);
}

TEST(PsnTest, AddWrapsForward) {
  EXPECT_EQ(PsnAdd(kPsnMask, 1), 0u);
  EXPECT_EQ(PsnAdd(kPsnMask, 2), 1u);
  EXPECT_EQ(PsnAdd(0, -1), kPsnMask);
}

TEST(PsnTest, DiffBasics) {
  EXPECT_EQ(PsnDiff(5, 3), 2);
  EXPECT_EQ(PsnDiff(3, 5), -2);
  EXPECT_EQ(PsnDiff(7, 7), 0);
}

TEST(PsnTest, DiffAcrossWrap) {
  EXPECT_EQ(PsnDiff(1, kPsnMask), 2);
  EXPECT_EQ(PsnDiff(kPsnMask, 1), -2);
}

TEST(PsnTest, ComparisonsAcrossWrap) {
  EXPECT_TRUE(PsnLt(kPsnMask, 0));
  EXPECT_TRUE(PsnGt(0, kPsnMask));
  EXPECT_TRUE(PsnLe(kPsnMask, kPsnMask));
  EXPECT_TRUE(PsnGe(5, 5));
  EXPECT_FALSE(PsnLt(5, 5));
}

TEST(PsnTest, HalfSpaceBoundary) {
  // Distance exactly 2^23 is "behind" by convention (negative).
  EXPECT_LT(PsnDiff(0, kPsnHalf), 0);
  EXPECT_GT(PsnDiff(0, kPsnHalf + 1), 0);
}

// --- Packet construction -----------------------------------------------------

TEST(PacketTest, DataPacketLayout) {
  Packet pkt = MakeDataPacket(/*flow_id=*/7, /*src=*/1, /*dst=*/2, /*psn=*/99,
                              /*payload=*/1436, /*sport=*/0xBEEF);
  EXPECT_EQ(pkt.type, PacketType::kData);
  EXPECT_EQ(pkt.flow_id, 7u);
  EXPECT_EQ(pkt.psn, 99u);
  EXPECT_EQ(pkt.payload_bytes, 1436u);
  EXPECT_EQ(pkt.wire_bytes, 1436u + kHeaderBytes);
  EXPECT_FALSE(pkt.IsControl());
}

TEST(PacketTest, DataPacketPsnMasked) {
  Packet pkt = MakeDataPacket(1, 0, 1, kPsnSpace + 3, 100, 0);
  EXPECT_EQ(pkt.psn, 3u);
}

TEST(PacketTest, ControlPacketLayout) {
  Packet nack = MakeControlPacket(PacketType::kNack, 7, 2, 1, 42, 0);
  EXPECT_TRUE(nack.IsControl());
  EXPECT_EQ(nack.wire_bytes, kControlPacketBytes);
  EXPECT_EQ(nack.psn, 42u);
  EXPECT_EQ(nack.src_host, 2);
  EXPECT_EQ(nack.dst_host, 1);
}

TEST(PacketTest, ToStringMentionsTypeAndPsn) {
  Packet pkt = MakeDataPacket(1, 0, 1, 5, 100, 0);
  const std::string s = pkt.ToString();
  EXPECT_NE(s.find("DATA"), std::string::npos);
  EXPECT_NE(s.find("psn=5"), std::string::npos);
}

// --- ECN profile -------------------------------------------------------------

TEST(EcnTest, NeverMarksBelowKmin) {
  Rng rng(1);
  EcnProfile ecn{.kmin_bytes = 1000, .kmax_bytes = 2000, .pmax = 1.0, .enabled = true};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ecn.ShouldMark(999, rng));
  }
}

TEST(EcnTest, AlwaysMarksAtKmax) {
  Rng rng(1);
  EcnProfile ecn{.kmin_bytes = 1000, .kmax_bytes = 2000, .pmax = 0.1, .enabled = true};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ecn.ShouldMark(2000, rng));
  }
}

TEST(EcnTest, LinearRampProbability) {
  Rng rng(42);
  EcnProfile ecn{.kmin_bytes = 0, .kmax_bytes = 1000, .pmax = 0.5, .enabled = true};
  int marks = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    marks += ecn.ShouldMark(500, rng) ? 1 : 0;  // expect pmax/2 = 0.25
  }
  EXPECT_NEAR(static_cast<double>(marks) / kTrials, 0.25, 0.02);
}

TEST(EcnTest, DisabledNeverMarks) {
  Rng rng(1);
  EcnProfile ecn{.kmin_bytes = 0, .kmax_bytes = 1, .pmax = 1.0, .enabled = false};
  EXPECT_FALSE(ecn.ShouldMark(1 << 20, rng));
}

// --- Port / link behaviour ---------------------------------------------------

// Minimal sink node recording deliveries.
class SinkNode : public Node {
 public:
  SinkNode(Simulator* sim, int id, std::string name = "sink")
      : Node(sim, id, NodeKind::kHost, std::move(name)) {}
  void ReceivePacket(const Packet& pkt, int in_port) override {
    arrivals.push_back({sim()->now(), pkt, in_port});
  }
  struct Arrival {
    TimePs time;
    Packet pkt;
    int in_port;
  };
  std::vector<Arrival> arrivals;
};

struct Harness {
  Simulator sim;
  Network net{&sim};
  SinkNode* a = nullptr;
  SinkNode* b = nullptr;
  DuplexLink link;

  explicit Harness(const LinkSpec& spec = LinkSpec{}) {
    a = net.MakeNode<SinkNode>("a");
    b = net.MakeNode<SinkNode>("b");
    link = net.Connect(a, b, spec);
  }
  Port* ab() { return a->port(link.a.port); }
  Port* ba() { return b->port(link.b.port); }
};

TEST(PortTest, DeliversAfterSerializationPlusPropagation) {
  LinkSpec spec;
  spec.rate = Rate::Gbps(100);
  spec.propagation_delay = 1 * kMicrosecond;
  Harness h(spec);

  h.ab()->Send(MakeDataPacket(1, 0, 1, 0, 1436, 0));  // 1500 B wire
  h.sim.Run();

  ASSERT_EQ(h.b->arrivals.size(), 1u);
  EXPECT_EQ(h.b->arrivals[0].time, 120 * kNanosecond + kMicrosecond);
}

TEST(PortTest, BackToBackPacketsSerializeSequentially) {
  LinkSpec spec;
  spec.rate = Rate::Gbps(100);
  spec.propagation_delay = 0;
  Harness h(spec);

  for (int i = 0; i < 3; ++i) {
    h.ab()->Send(MakeDataPacket(1, 0, 1, static_cast<uint32_t>(i), 1436, 0));
  }
  h.sim.Run();

  ASSERT_EQ(h.b->arrivals.size(), 3u);
  EXPECT_EQ(h.b->arrivals[0].time, 120 * kNanosecond);
  EXPECT_EQ(h.b->arrivals[1].time, 240 * kNanosecond);
  EXPECT_EQ(h.b->arrivals[2].time, 360 * kNanosecond);
}

TEST(PortTest, PreservesFifoOrder) {
  Harness h;
  for (uint32_t i = 0; i < 50; ++i) {
    h.ab()->Send(MakeDataPacket(1, 0, 1, i, 1000, 0));
  }
  h.sim.Run();
  ASSERT_EQ(h.b->arrivals.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(h.b->arrivals[i].pkt.psn, i);
  }
}

TEST(PortTest, ControlPacketsPreemptDataQueue) {
  LinkSpec spec;
  spec.rate = Rate::Gbps(100);
  spec.propagation_delay = 0;
  Harness h(spec);

  // Three large data packets then a NACK: the NACK must jump the data queue
  // (it transmits right after the packet already on the wire).
  for (uint32_t i = 0; i < 3; ++i) {
    h.ab()->Send(MakeDataPacket(1, 0, 1, i, 1436, 0));
  }
  h.ab()->Send(MakeControlPacket(PacketType::kNack, 1, 0, 1, 0, 0));
  h.sim.Run();

  ASSERT_EQ(h.b->arrivals.size(), 4u);
  EXPECT_EQ(h.b->arrivals[1].pkt.type, PacketType::kNack);
}

TEST(PortTest, DropsWhenDataQueueFull) {
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);  // slow so queue builds
  spec.queue_capacity_bytes = 3000;
  Harness h(spec);

  for (uint32_t i = 0; i < 10; ++i) {
    h.ab()->Send(MakeDataPacket(1, 0, 1, i, 1436, 0));  // 1500 B each
  }
  h.sim.Run();

  // One on the wire immediately + 2 queued (3000 B) = 3 delivered.
  EXPECT_EQ(h.b->arrivals.size(), 3u);
  EXPECT_EQ(h.ab()->stats().drops, 7u);
  EXPECT_GT(h.ab()->stats().drop_bytes, 0u);
}

TEST(PortTest, ControlPacketsNeverDropped) {
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);
  spec.queue_capacity_bytes = 1500;
  Harness h(spec);

  for (uint32_t i = 0; i < 100; ++i) {
    h.ab()->Send(MakeControlPacket(PacketType::kAck, 1, 0, 1, i, 0));
  }
  h.sim.Run();
  EXPECT_EQ(h.b->arrivals.size(), 100u);
  EXPECT_EQ(h.ab()->stats().drops, 0u);
}

TEST(PortTest, FailedPortBlackholes) {
  Harness h;
  h.ab()->set_failed(true);
  h.ab()->Send(MakeDataPacket(1, 0, 1, 0, 100, 0));
  h.sim.Run();
  EXPECT_TRUE(h.b->arrivals.empty());
  EXPECT_EQ(h.ab()->stats().drops, 1u);
}

TEST(PortTest, MidFlightFailureCountsAsDrop) {
  // The packet has left the serializer and is propagating when the link
  // fails: it must be counted as a drop, not silently vanish.
  LinkSpec spec;
  spec.rate = Rate::Gbps(100);
  spec.propagation_delay = 1 * kMicrosecond;
  Harness h(spec);

  h.ab()->Send(MakeDataPacket(1, 0, 1, 0, 1436, 0));  // delivers at 1.12 us
  h.sim.ScheduleAt(500 * kNanosecond, [&h] { h.ab()->set_failed(true); });
  h.sim.Run();

  EXPECT_TRUE(h.b->arrivals.empty());
  EXPECT_EQ(h.ab()->stats().drops, 1u);
  EXPECT_EQ(h.ab()->stats().drop_bytes, 1500u);
}

TEST(PortTest, EcnMarksUnderBacklog) {
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);
  spec.queue_capacity_bytes = 1 << 20;
  Harness h(spec);
  h.ab()->ecn() =
      EcnProfile{.kmin_bytes = 1000, .kmax_bytes = 2000, .pmax = 1.0, .enabled = true};

  for (uint32_t i = 0; i < 10; ++i) {
    h.ab()->Send(MakeDataPacket(1, 0, 1, i, 1436, 0));
  }
  h.sim.Run();

  ASSERT_EQ(h.b->arrivals.size(), 10u);
  // First packets saw an empty queue (no mark); later ones saw >= 2000 B.
  EXPECT_FALSE(h.b->arrivals[0].pkt.ecn_ce);
  EXPECT_TRUE(h.b->arrivals[9].pkt.ecn_ce);
  EXPECT_GT(h.ab()->stats().ecn_marks, 0u);
}

TEST(PortTest, StatsCountTxBytes) {
  Harness h;
  h.ab()->Send(MakeDataPacket(1, 0, 1, 0, 1436, 0));
  h.ab()->Send(MakeControlPacket(PacketType::kAck, 1, 0, 1, 0, 0));
  h.sim.Run();
  EXPECT_EQ(h.ab()->stats().tx_packets, 2u);
  EXPECT_EQ(h.ab()->stats().tx_bytes, 1500u + kControlPacketBytes);
  EXPECT_EQ(h.ab()->stats().tx_data_bytes, 1500u);
}

TEST(NetworkTest, ConnectCreatesBidirectionalPorts) {
  Harness h;
  EXPECT_TRUE(h.ab()->connected());
  EXPECT_TRUE(h.ba()->connected());
  EXPECT_EQ(h.ab()->peer(), h.b);
  EXPECT_EQ(h.ba()->peer(), h.a);

  h.ba()->Send(MakeDataPacket(1, 1, 0, 0, 100, 0));
  h.sim.Run();
  EXPECT_EQ(h.a->arrivals.size(), 1u);
}

TEST(PacketQueueTest, FifoOrderAcrossPushAndPop) {
  PacketArena arena;
  PacketQueue queue(&arena);
  EXPECT_TRUE(queue.empty());
  for (uint32_t psn = 0; psn < 10; ++psn) {
    queue.push_back(MakeDataPacket(1, 0, 1, psn, 100, 0));
  }
  EXPECT_EQ(queue.size(), 10u);
  for (uint32_t psn = 0; psn < 10; ++psn) {
    EXPECT_EQ(queue.front().psn, psn);
    queue.pop_front();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(PacketQueueTest, ArenaRecyclesNodesAfterWarmup) {
  PacketArena arena;
  PacketQueue queue(&arena);
  // Warm-up: the first pushes carve fresh nodes from a slab.
  for (uint32_t psn = 0; psn < 8; ++psn) {
    queue.push_back(MakeDataPacket(1, 0, 1, psn, 100, 0));
  }
  queue.clear();
  EXPECT_EQ(arena.fresh_allocations(), 8u);
  EXPECT_EQ(arena.recycled_allocations(), 0u);
  EXPECT_EQ(arena.slab_count(), 1u);

  // Steady state: every further push is served from the freelist.
  for (int round = 0; round < 100; ++round) {
    for (uint32_t psn = 0; psn < 8; ++psn) {
      queue.push_back(MakeDataPacket(1, 0, 1, psn, 100, 0));
    }
    queue.clear();
  }
  EXPECT_EQ(arena.fresh_allocations(), 8u);
  EXPECT_EQ(arena.recycled_allocations(), 800u);
  EXPECT_EQ(arena.slab_count(), 1u);
}

TEST(PacketQueueTest, QueuesShareOneArena) {
  PacketArena arena;
  PacketQueue a(&arena);
  PacketQueue b(&arena);
  a.push_back(MakeDataPacket(1, 0, 1, 1, 100, 0));
  a.pop_front();
  // b's first push reuses the node a released.
  b.push_back(MakeDataPacket(1, 0, 1, 2, 100, 0));
  EXPECT_EQ(arena.fresh_allocations(), 1u);
  EXPECT_EQ(arena.recycled_allocations(), 1u);
}

TEST(PacketQueueTest, FreelistIsLifoAndPayloadSurvivesRecycling) {
  PacketArena arena;
  PacketQueue queue(&arena);
  // Free order: psn 0's node first, then psn 1's. The freelist is LIFO, so
  // the next alloc must reuse psn 1's node, then psn 0's — and the recycled
  // nodes must carry the *new* payload, nothing stale.
  queue.push_back(MakeDataPacket(1, 0, 1, 0, 100, 0));
  queue.push_back(MakeDataPacket(1, 0, 1, 1, 100, 0));
  PacketArena::Node* first = nullptr;
  PacketArena::Node* second = nullptr;
  queue.pop_front();  // frees psn 0's node
  queue.pop_front();  // frees psn 1's node (now freelist head)
  second = arena.Alloc();
  first = arena.Alloc();
  EXPECT_NE(first, second);
  EXPECT_EQ(arena.fresh_allocations(), 2u);
  EXPECT_EQ(arena.recycled_allocations(), 2u);
  arena.Free(first);
  arena.Free(second);

  queue.push_back(MakeDataPacket(2, 3, 4, 77, 512, 9));
  EXPECT_EQ(queue.front().flow_id, 2u);
  EXPECT_EQ(queue.front().psn, 77u);
  EXPECT_EQ(queue.front().payload_bytes, 512u);
  queue.clear();
}

TEST(PacketQueueTest, ArenaGrowsMidRunWithoutDisturbingLiveQueue) {
  PacketArena arena;
  PacketQueue queue(&arena);
  // 256 nodes fill the first slab; the 257th push carves a second slab while
  // the queue is live. FIFO order and payloads must hold across the slab
  // boundary.
  constexpr uint32_t kCount = 300;
  for (uint32_t psn = 0; psn < kCount; ++psn) {
    queue.push_back(MakeDataPacket(1, 0, 1, psn, 100, 0));
  }
  EXPECT_EQ(arena.slab_count(), 2u);
  EXPECT_EQ(arena.fresh_allocations(), static_cast<size_t>(kCount));
  for (uint32_t psn = 0; psn < kCount; ++psn) {
    ASSERT_FALSE(queue.empty());
    EXPECT_EQ(queue.front().psn, psn);
    queue.pop_front();
  }
  EXPECT_TRUE(queue.empty());
  // The grown arena serves everything from the freelist afterwards.
  for (uint32_t psn = 0; psn < kCount; ++psn) {
    queue.push_back(MakeDataPacket(1, 0, 1, psn, 100, 0));
  }
  EXPECT_EQ(arena.fresh_allocations(), static_cast<size_t>(kCount));
  EXPECT_EQ(arena.recycled_allocations(), static_cast<size_t>(kCount));
  EXPECT_EQ(arena.slab_count(), 2u);
}

TEST(PacketQueueTest, NetworksDoNotShareArenas) {
  // SweepRunner's determinism contract: concurrently running experiments
  // must not share any allocator state. Each Network owns its own arena.
  Simulator sim_a;
  Network net_a(&sim_a);
  Simulator sim_b;
  Network net_b(&sim_b);
  EXPECT_NE(&net_a.packet_arena(), &net_b.packet_arena());

  SinkNode* a0 = net_a.MakeNode<SinkNode>("a0");
  SinkNode* a1 = net_a.MakeNode<SinkNode>("a1");
  const DuplexLink link = net_a.Connect(a0, a1, LinkSpec{});
  a0->port(link.a.port)->Send(MakeDataPacket(1, a0->id(), a1->id(), 0, 100, 0));
  sim_a.Run();
  // Traffic in net_a never touches net_b's arena.
  EXPECT_GT(net_a.packet_arena().fresh_allocations(), 0u);
  EXPECT_EQ(net_b.packet_arena().fresh_allocations(), 0u);
}

// ---------------------------------------------------------------------------
// PacketBurst SoA staging (the burst pipeline's gather buffer).

TEST(PacketBurstTest, ColumnsMirrorAppendedPackets) {
  PacketArena arena;
  PacketBurst& burst = arena.burst_staging();
  burst.BeginUse();
  burst.Append(MakeDataPacket(7, 0, 1, 42, 1000, 0), 3);
  burst.Append(MakeControlPacket(PacketType::kNack, 9, 1, 0, 42, 0), 5);
  ASSERT_EQ(burst.size(), 2u);
  EXPECT_EQ(burst.psn_data()[0], 42u);
  EXPECT_EQ(burst.flow_id_data()[0], 7u);
  EXPECT_EQ(burst.wire_bytes_data()[0], burst.packet(0).wire_bytes);
  EXPECT_EQ(burst.in_port(0), 3);
  EXPECT_TRUE(burst.is_data(0));
  EXPECT_FALSE(burst.is_control(0));
  EXPECT_TRUE(burst.is_control(1));
  EXPECT_FALSE(burst.is_data(1));
  EXPECT_EQ(burst.in_port(1), 5);
  EXPECT_FALSE(burst.consumed(0));
  burst.Consume(0);
  EXPECT_TRUE(burst.consumed(0));
  EXPECT_TRUE(burst.is_data(0));  // the consumed bit does not clobber the type
  burst.EndUse();
}

TEST(PacketBurstTest, SlabGrowthMidBurstKeepsColumnsCoherent) {
  // Gathering a burst while the arena carves a new slab (push 300 queue nodes
  // = two slabs) must leave every previously appended column intact: the
  // burst snapshots packets, it never aliases arena nodes.
  PacketArena arena;
  PacketQueue queue(&arena);
  PacketBurst& burst = arena.burst_staging();
  constexpr uint32_t kCount = 300;  // > one 256-node slab
  burst.BeginUse();
  for (uint32_t psn = 0; psn < kCount; ++psn) {
    const Packet pkt = MakeDataPacket(1, 0, 1, psn, 100, 0);
    queue.push_back(pkt);  // grows a second slab at node 257
    burst.Append(pkt, static_cast<int>(psn % 7));
  }
  EXPECT_EQ(arena.slab_count(), 2u);
  while (!queue.empty()) {
    queue.pop_front();  // nodes return to the freelist while the burst is live
  }
  ASSERT_EQ(burst.size(), static_cast<size_t>(kCount));
  for (uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(burst.psn_data()[i], i);
    EXPECT_EQ(burst.packet(i).psn, i);
    EXPECT_EQ(burst.in_port(i), static_cast<int>(i % 7));
  }
  burst.EndUse();
}

TEST(PacketBurstTest, FreelistRecycleDoesNotAliasBurstColumns) {
  // A node freed after gather and recycled for a new packet must not change
  // what the burst staged — columns and the AoS snapshot are both copies.
  PacketArena arena;
  PacketQueue queue(&arena);
  PacketBurst& burst = arena.burst_staging();
  queue.push_back(MakeDataPacket(1, 0, 1, 11, 100, 0));
  burst.BeginUse();
  burst.Append(queue.front(), 0);
  queue.pop_front();  // free the node...
  queue.push_back(MakeDataPacket(2, 0, 1, 99, 100, 0));  // ...recycle it
  EXPECT_EQ(arena.recycled_allocations(), 1u);
  EXPECT_EQ(burst.psn_data()[0], 11u);
  EXPECT_EQ(burst.packet(0).psn, 11u);
  EXPECT_EQ(burst.flow_id_data()[0], 1u);
  burst.EndUse();
}

TEST(PacketBurstTest, BeginUseResetsPriorContents) {
  PacketArena arena;
  PacketBurst& burst = arena.burst_staging();
  burst.BeginUse();
  burst.Append(MakeDataPacket(1, 0, 1, 5, 100, 0), 0);
  burst.egress.push_back(nullptr);  // switch-pipeline scratch in use
  burst.EndUse();
  burst.BeginUse();  // a fresh gather starts from zero
  EXPECT_TRUE(burst.empty());
  burst.EndUse();
}

TEST(PacketBurstTest, StagingIsPerArena) {
  // Same isolation contract as the queue nodes: concurrent Networks must
  // never share a staging area, and activity in one is invisible to the other.
  Simulator sim_a;
  Network net_a(&sim_a);
  Simulator sim_b;
  Network net_b(&sim_b);
  PacketBurst& a = net_a.packet_arena().burst_staging();
  PacketBurst& b = net_b.packet_arena().burst_staging();
  EXPECT_NE(&a, &b);
  a.BeginUse();
  a.Append(MakeDataPacket(1, 0, 1, 0, 100, 0), 0);
  EXPECT_TRUE(a.active());
  EXPECT_FALSE(b.active());
  EXPECT_TRUE(b.empty());
  a.EndUse();
}

TEST(NetworkTest, NodeIdsAreSequential) {
  Simulator sim;
  Network net(&sim);
  SinkNode* n0 = net.MakeNode<SinkNode>("x");
  SinkNode* n1 = net.MakeNode<SinkNode>("y");
  EXPECT_EQ(n0->id(), 0);
  EXPECT_EQ(n1->id(), 1);
  EXPECT_EQ(net.node_count(), 2);
  EXPECT_EQ(net.node(1), n1);
}

}  // namespace
}  // namespace themis
