// Unit + property tests for ECMP hashing (GF(2) linearity) and the
// load-balancing policies.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/lb/ecmp_hash.h"
#include "src/lb/policies.h"
#include "src/net/network.h"

namespace themis {
namespace {

// --- Hash properties ---------------------------------------------------------

TEST(EcmpHashTest, Deterministic) {
  EcmpTuple t{.src = 1, .dst = 2, .sport = 3, .dport = 4};
  EXPECT_EQ(EcmpHash(t), EcmpHash(t));
}

TEST(EcmpHashTest, SensitiveToEveryField) {
  EcmpTuple base{.src = 1, .dst = 2, .sport = 3, .dport = 4};
  EcmpTuple t = base;
  t.src = 9;
  EXPECT_NE(EcmpHash(base), EcmpHash(t));
  t = base;
  t.dst = 9;
  EXPECT_NE(EcmpHash(base), EcmpHash(t));
  t = base;
  t.sport = 9;
  EXPECT_NE(EcmpHash(base), EcmpHash(t));
  t = base;
  t.dport = 9;
  EXPECT_NE(EcmpHash(base), EcmpHash(t));
}

// The property the PathMap (Fig. 3) is built on.
TEST(EcmpHashTest, SportDeltaLinearityProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    EcmpTuple t;
    t.src = static_cast<uint32_t>(rng.Next());
    t.dst = static_cast<uint32_t>(rng.Next());
    t.sport = static_cast<uint16_t>(rng.Next());
    t.dport = static_cast<uint32_t>(rng.Next());
    const auto delta = static_cast<uint16_t>(rng.Next());

    EcmpTuple shifted = t;
    shifted.sport = t.sport ^ delta;
    EXPECT_EQ(EcmpHash(shifted), EcmpHash(t) ^ SportDeltaHash(delta));
  }
}

TEST(EcmpHashTest, FullGf2LinearityOverWholeTuple) {
  // crc(a ^ b) == crc(a) ^ crc(b) for equal-length messages with init 0.
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    uint8_t a[14];
    uint8_t b[14];
    uint8_t x[14];
    for (int i = 0; i < 14; ++i) {
      a[i] = static_cast<uint8_t>(rng.Next());
      b[i] = static_cast<uint8_t>(rng.Next());
      x[i] = a[i] ^ b[i];
    }
    EXPECT_EQ(Crc32::Hash(x, 14), Crc32::Hash(a, 14) ^ Crc32::Hash(b, 14));
  }
}

TEST(EcmpHashTest, BucketPowerOfTwoUsesMask) {
  EXPECT_EQ(EcmpBucket(0xABCD, 16), 0xABCDu & 15u);
  EXPECT_EQ(EcmpBucket(0xABCD, 1), 0u);
}

TEST(EcmpHashTest, BucketNonPowerOfTwoUsesModulo) {
  EXPECT_EQ(EcmpBucket(100, 7), 100u % 7u);
}

TEST(EcmpHashTest, BucketsRoughlyUniform) {
  constexpr uint32_t kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  for (uint32_t i = 0; i < 16000; ++i) {
    EcmpTuple t{.src = i * 7919, .dst = i ^ 0x5A5A5A5A, .sport = static_cast<uint16_t>(i),
                .dport = i * 31};
    ++counts[EcmpBucket(EcmpHash(t), kBuckets)];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, 1000, 150);
  }
}

// --- Policy tests ------------------------------------------------------------

class NullNode : public Node {
 public:
  NullNode(Simulator* sim, int id, std::string name = "n")
      : Node(sim, id, NodeKind::kSwitch, std::move(name)) {}
  void ReceivePacket(const Packet&, int) override {}
};

struct PolicyHarness {
  Simulator sim;
  Network net{&sim};
  NullNode* sw = nullptr;
  NullNode* peer = nullptr;
  std::vector<Port*> candidates;
  LbContext ctx;

  explicit PolicyHarness(int num_ports) {
    sw = net.MakeNode<NullNode>("sw");
    peer = net.MakeNode<NullNode>("peer");
    for (int i = 0; i < num_ports; ++i) {
      DuplexLink link = net.Connect(sw, peer, LinkSpec{});
      candidates.push_back(sw->port(link.a.port));
    }
    ctx = LbContext{.switch_salt = 0x1234, .hash_shift = 0, .now = 0, .rng = &sim.rng()};
  }
  std::span<Port* const> span() const { return {candidates.data(), candidates.size()}; }
};

TEST(EcmpLbTest, SameFlowAlwaysSamePort) {
  PolicyHarness h(8);
  EcmpLb lb;
  Packet pkt = MakeDataPacket(42, 1, 2, 0, 1000, 0x1111);
  const size_t first = lb.Select(pkt, h.span(), h.ctx);
  for (uint32_t psn = 1; psn < 200; ++psn) {
    pkt.psn = psn;
    EXPECT_EQ(lb.Select(pkt, h.span(), h.ctx), first);
  }
}

TEST(EcmpLbTest, DifferentFlowsSpread) {
  PolicyHarness h(8);
  EcmpLb lb;
  std::set<size_t> used;
  for (uint32_t flow = 0; flow < 64; ++flow) {
    Packet pkt = MakeDataPacket(flow, 1, 2, 0, 1000, static_cast<uint16_t>(flow * 131));
    used.insert(lb.Select(pkt, h.span(), h.ctx));
  }
  EXPECT_GT(used.size(), 4u);
}

TEST(RandomSprayLbTest, CoversAllPorts) {
  PolicyHarness h(8);
  RandomSprayLb lb;
  Packet pkt = MakeDataPacket(1, 1, 2, 0, 1000, 0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 8000; ++i) {
    ++counts[lb.Select(pkt, h.span(), h.ctx)];
  }
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [port, count] : counts) {
    EXPECT_NEAR(count, 1000, 200);
  }
}

TEST(AdaptiveRoutingLbTest, PicksLeastLoadedPort) {
  PolicyHarness h(4);
  // Load ports 0..2 with queued packets; port 3 stays empty.
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 5; ++i) {
      h.candidates[static_cast<size_t>(p)]->Send(MakeDataPacket(1, 0, 1, 0, 1436, 0));
    }
  }
  AdaptiveRoutingLb lb;
  Packet pkt = MakeDataPacket(2, 1, 2, 0, 1000, 0);
  EXPECT_EQ(lb.Select(pkt, h.span(), h.ctx), 3u);
}

TEST(AdaptiveRoutingLbTest, TieBreaksAcrossEqualPorts) {
  PolicyHarness h(4);
  AdaptiveRoutingLb lb;
  Packet pkt = MakeDataPacket(2, 1, 2, 0, 1000, 0);
  std::set<size_t> used;
  for (int i = 0; i < 400; ++i) {
    used.insert(lb.Select(pkt, h.span(), h.ctx));
  }
  EXPECT_EQ(used.size(), 4u);  // all-empty queues: random among all
}

TEST(FlowletLbTest, SticksWithinGap) {
  PolicyHarness h(8);
  FlowletLb lb(/*flowlet_gap=*/50 * kMicrosecond);
  Packet pkt = MakeDataPacket(9, 1, 2, 0, 1000, 0);
  h.ctx.now = 0;
  const size_t first = lb.Select(pkt, h.span(), h.ctx);
  for (int i = 1; i < 100; ++i) {
    h.ctx.now = static_cast<TimePs>(i) * kMicrosecond;  // gaps of 1 us << 50 us
    EXPECT_EQ(lb.Select(pkt, h.span(), h.ctx), first);
  }
  EXPECT_EQ(lb.flowlet_count(), 1u);
}

TEST(FlowletLbTest, RepicksAfterIdleGap) {
  PolicyHarness h(8);
  FlowletLb lb(/*flowlet_gap=*/50 * kMicrosecond);
  Packet pkt = MakeDataPacket(9, 1, 2, 0, 1000, 0);
  uint64_t repicks = 0;
  TimePs now = 0;
  for (int i = 0; i < 50; ++i) {
    h.ctx.now = now;
    lb.Select(pkt, h.span(), h.ctx);
    now += 100 * kMicrosecond;  // every packet exceeds the gap
  }
  repicks = lb.flowlet_count();
  EXPECT_EQ(repicks, 50u);
}

TEST(PsnSprayLbTest, DeterministicPerPsn) {
  PolicyHarness h(8);
  PsnSprayLb lb;
  Packet pkt = MakeDataPacket(3, 1, 2, 0, 1000, 0x2222);
  for (uint32_t psn = 0; psn < 64; ++psn) {
    pkt.psn = psn;
    const size_t a = lb.Select(pkt, h.span(), h.ctx);
    const size_t b = lb.Select(pkt, h.span(), h.ctx);
    EXPECT_EQ(a, b);
  }
}

TEST(PsnSprayLbTest, ImplementsEquationOne) {
  // path_i = (PSN mod N + P_base) mod N: consecutive PSNs walk consecutive
  // paths cyclically.
  PolicyHarness h(8);
  PsnSprayLb lb;
  Packet pkt = MakeDataPacket(3, 1, 2, 0, 1000, 0x2222);
  pkt.psn = 0;
  const size_t base = lb.Select(pkt, h.span(), h.ctx);
  for (uint32_t psn = 0; psn < 64; ++psn) {
    pkt.psn = psn;
    EXPECT_EQ(lb.Select(pkt, h.span(), h.ctx), (base + psn) % 8);
  }
}

TEST(PsnSprayLbTest, SamePsnClassSamePath) {
  // Eq. 3's premise: PSNs congruent mod N share a path.
  PolicyHarness h(8);
  PsnSprayLb lb;
  Packet pkt = MakeDataPacket(3, 1, 2, 0, 1000, 0x2222);
  for (uint32_t cls = 0; cls < 8; ++cls) {
    pkt.psn = cls;
    const size_t path = lb.Select(pkt, h.span(), h.ctx);
    for (uint32_t k = 1; k < 16; ++k) {
      pkt.psn = cls + 8 * k;
      EXPECT_EQ(lb.Select(pkt, h.span(), h.ctx), path);
    }
  }
}

TEST(PsnSprayLbTest, UniformAcrossPaths) {
  PolicyHarness h(8);
  PsnSprayLb lb;
  Packet pkt = MakeDataPacket(3, 1, 2, 0, 1000, 0x2222);
  std::map<size_t, int> counts;
  for (uint32_t psn = 0; psn < 800; ++psn) {
    pkt.psn = psn;
    ++counts[lb.Select(pkt, h.span(), h.ctx)];
  }
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [port, count] : counts) {
    EXPECT_EQ(count, 100);  // exactly uniform, not just statistically
  }
}

TEST(MakeLoadBalancerTest, FactoryProducesAllKinds) {
  for (LbKind kind : {LbKind::kEcmp, LbKind::kRandomSpray, LbKind::kAdaptive, LbKind::kFlowlet,
                      LbKind::kPsnSpray}) {
    auto lb = MakeLoadBalancer(kind);
    ASSERT_NE(lb, nullptr);
    EXPECT_STREQ(lb->name(), LbKindName(kind));
  }
}

}  // namespace
}  // namespace themis
