// Property-based conformance suite for the receiver-side NIC-SR contract
// (paper Section 2.2) — the behaviour every Themis-D inference rests on:
//
//  * an OOO arrival provokes a NACK carrying *only the ePSN*, and each ePSN
//    epoch provokes at most one NACK;
//  * everything below the cumulative ACK has been delivered, and the ACK
//    clock never runs backwards;
//  * OOO packets are held in the bitmap until the gap closes;
//  * retransmitting exactly the PSN a NACK names always makes progress
//    (selective-retransmit completeness).
//
// Randomized loss/reorder/duplication schedules are played packet-for-packet
// into a real ReceiverQp and into a brute-force reference receiver written
// straight from the contract (a PSN set and a linear rescan — no ring
// buffers, no incremental state). Control stream and visible state must
// agree after every single delivery.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/net/network.h"
#include "src/rnic/rnic_host.h"
#include "src/sim/random.h"
#include "tests/reference_nic_sr.h"

namespace themis {
namespace {

class ControlSink : public Node {
 public:
  ControlSink(Simulator* sim, int id, std::string name)
      : Node(sim, id, NodeKind::kHost, std::move(name)) {}
  void ReceivePacket(const Packet& pkt, int) override { received.push_back(pkt); }
  std::vector<Packet> received;
};

// A ReceiverQp wired to a recording peer: Deliver() hands one data packet to
// the QP and returns exactly the control packets it provoked.
struct ConformanceHarness {
  Simulator sim;
  Network net{&sim};
  RnicHost* nic = nullptr;
  ControlSink* peer = nullptr;
  ReceiverQp* rx = nullptr;
  size_t consumed_ = 0;

  explicit ConformanceHarness(TransportKind transport = TransportKind::kNicSr) {
    nic = net.MakeNode<RnicHost>("rx-nic");
    peer = net.MakeNode<ControlSink>("peer");
    LinkSpec spec;
    spec.propagation_delay = 0;
    net.Connect(nic, peer, spec);
    QpConfig config;
    config.transport = transport;
    config.cc = CcKind::kFixedRate;
    config.mtu_bytes = 1500;
    rx = nic->CreateReceiverQp(/*flow_id=*/1, peer->id(), config);
  }

  std::vector<Packet> Deliver(uint32_t psn, uint32_t payload, bool retransmission = false) {
    Packet pkt = MakeDataPacket(1, peer->id(), nic->id(), psn, payload, 0x42);
    pkt.retransmission = retransmission;
    rx->HandleData(pkt);
    sim.Run();  // flush the control queue onto the wire
    std::vector<Packet> out(peer->received.begin() + static_cast<long>(consumed_),
                            peer->received.end());
    consumed_ = peer->received.size();
    return out;
  }
};

// Reference receiver: tests/reference_nic_sr.h (shared with the flow-table
// fail-open property tests).

// Tracks the stream-level invariants across a whole schedule.
struct StreamInvariants {
  uint32_t last_ack = 0;
  bool any_ack = false;
  int64_t last_nack_psn = -1;

  void Observe(const Packet& pkt) {
    if (pkt.type == PacketType::kAck) {
      if (any_ack) {
        EXPECT_GE(pkt.psn, last_ack) << "cumulative ACK ran backwards";
      }
      last_ack = pkt.psn;
      any_ack = true;
    } else if (pkt.type == PacketType::kNack) {
      // ePSN only advances, and each epoch NACKs at most once, so the NACKed
      // PSNs must be strictly increasing.
      EXPECT_GT(static_cast<int64_t>(pkt.psn), last_nack_psn)
          << "second NACK for the same ePSN epoch";
      last_nack_psn = pkt.psn;
    }
  }
};

uint32_t PayloadFor(uint32_t psn) { return 100 + (psn % 7) * 50; }

// Plays one delivery into both receivers and checks control-stream equality
// plus state equality (ePSN, bitmap occupancy, in-order bytes).
void Step(ConformanceHarness& h, ReferenceNicSr& ref, StreamInvariants& inv, uint32_t psn,
          bool retransmission, uint64_t seed) {
  const std::vector<Packet> actual = h.Deliver(psn, PayloadFor(psn), retransmission);
  const std::vector<RefControl> expected = ref.Deliver(psn, PayloadFor(psn));
  ASSERT_EQ(actual.size(), expected.size()) << "seed " << seed << " psn " << psn;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].type, expected[i].type) << "seed " << seed << " psn " << psn;
    EXPECT_EQ(actual[i].psn, expected[i].psn) << "seed " << seed << " psn " << psn;
    inv.Observe(actual[i]);
  }
  EXPECT_EQ(h.rx->epsn(), ref.epsn()) << "seed " << seed << " psn " << psn;
  EXPECT_EQ(h.rx->ooo_depth(), ref.ooo_size()) << "seed " << seed << " psn " << psn;
  EXPECT_EQ(h.rx->in_order_bytes(), ref.bytes()) << "seed " << seed << " psn " << psn;
}

// A randomized spray schedule: loss, in-flight duplication, arbitrary
// reorder (a Fisher-Yates shuffle — packet spraying makes no ordering
// promises at all).
std::vector<uint32_t> MakeSchedule(Rng& rng, uint32_t packets, double loss_p, double dup_p) {
  std::vector<uint32_t> schedule;
  for (uint32_t psn = 0; psn < packets; ++psn) {
    if (rng.Chance(loss_p)) {
      continue;  // lost in the fabric
    }
    schedule.push_back(psn);
    if (rng.Chance(dup_p)) {
      schedule.push_back(psn);  // duplicated (e.g. a spurious retransmission)
    }
  }
  for (size_t i = schedule.size(); i > 1; --i) {
    std::swap(schedule[i - 1], schedule[rng.Below(i)]);
  }
  return schedule;
}

TEST(NicSrConformanceTest, RandomizedSchedulesMatchReferenceReceiver) {
  constexpr uint32_t kPackets = 48;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ConformanceHarness h;
    ReferenceNicSr ref;
    StreamInvariants inv;
    Rng rng(seed);
    for (uint32_t psn : MakeSchedule(rng, kPackets, /*loss_p=*/0.15, /*dup_p=*/0.10)) {
      Step(h, ref, inv, psn, /*retransmission=*/false, seed);
    }

    // Selective-retransmit completeness: resend exactly the PSN the receiver
    // names (its ePSN) one at a time; every retransmission must advance ePSN
    // and recovery must terminate with an empty bitmap and all bytes
    // delivered in order.
    while (h.rx->epsn() < kPackets) {
      const uint32_t gap = h.rx->epsn();
      Step(h, ref, inv, gap, /*retransmission=*/true, seed);
      ASSERT_GT(h.rx->epsn(), gap) << "seed " << seed
                                   << ": retransmitting the named gap did not advance ePSN";
    }
    EXPECT_EQ(h.rx->ooo_depth(), 0u);
    uint64_t total = 0;
    for (uint32_t psn = 0; psn < kPackets; ++psn) {
      total += PayloadFor(psn);
    }
    EXPECT_EQ(h.rx->in_order_bytes(), total) << "seed " << seed;
  }
}

TEST(NicSrConformanceTest, NackNamesTheExpectedPsnNotTheTrigger) {
  // Section 2.2: the NACK omits the triggering PSN — reconstructing it (the
  // tPSN) is exactly the job Themis-D's PSN queue exists for.
  ConformanceHarness h;
  h.Deliver(0, 1000);
  const std::vector<Packet> ctrl = h.Deliver(7, 1000);
  ASSERT_EQ(ctrl.size(), 1u);
  EXPECT_EQ(ctrl[0].type, PacketType::kNack);
  EXPECT_EQ(ctrl[0].psn, 1u);
}

TEST(NicSrConformanceTest, MessageCompletionsFireOnInOrderBoundaryOnly) {
  // Receive completions must follow the *in-order* byte stream: a message
  // whose packets all arrived but whose predecessor still has a gap is not
  // complete. Closing the gap completes everything at once.
  ConformanceHarness h;
  int completed = 0;
  h.rx->ExpectMessage(3 * 1000, [&] { ++completed; });
  h.rx->ExpectMessage(3 * 1000, [&] { ++completed; });
  for (uint32_t psn = 5; psn >= 1; --psn) {
    h.Deliver(psn, 1000);
  }
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(h.rx->ooo_depth(), 5u);
  h.Deliver(0, 1000);
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(h.rx->stats().messages_delivered, 2u);
  EXPECT_EQ(h.rx->ooo_depth(), 0u);
}

TEST(NicSrConformanceTest, IdealOracleNeverNacksUnderAnySchedule) {
  // The Fig. 1d oracle: the same randomized spray schedules (no loss, so
  // recovery is not needed) produce zero NACKs and full delivery.
  constexpr uint32_t kPackets = 32;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ConformanceHarness h(TransportKind::kIdeal);
    Rng rng(seed);
    for (uint32_t psn : MakeSchedule(rng, kPackets, /*loss_p=*/0.0, /*dup_p=*/0.10)) {
      h.Deliver(psn, PayloadFor(psn));
    }
    EXPECT_EQ(h.rx->stats().nacks_sent, 0u) << "seed " << seed;
    EXPECT_EQ(h.rx->epsn(), kPackets) << "seed " << seed;
    EXPECT_EQ(h.rx->ooo_depth(), 0u) << "seed " << seed;
  }
}

TEST(NicSrConformanceTest, GoBackNDropsOooAndRenacksPerEpoch) {
  // The CX-4/5 baseline the paper contrasts against: OOO packets are
  // discarded (never buffered), with the same one-NACK-per-ePSN pacing.
  ConformanceHarness h(TransportKind::kGoBackN);
  h.Deliver(0, 1000);  // ACK(1)
  h.Deliver(2, 1000);  // dropped + NACK(1)
  h.Deliver(3, 1000);  // dropped, same epoch: no second NACK
  EXPECT_EQ(h.rx->stats().nacks_sent, 1u);
  EXPECT_EQ(h.rx->stats().dropped_ooo, 2u);
  EXPECT_EQ(h.rx->ooo_depth(), 0u);
  h.Deliver(1, 1000);  // gap closes, but 2 and 3 were discarded
  EXPECT_EQ(h.rx->epsn(), 2u);
  const std::vector<Packet> ctrl = h.Deliver(3, 1000);  // new epoch -> new NACK
  ASSERT_EQ(ctrl.size(), 1u);
  EXPECT_EQ(ctrl[0].type, PacketType::kNack);
  EXPECT_EQ(ctrl[0].psn, 2u);
}

}  // namespace
}  // namespace themis
