// Unit + integration tests for the chaos engine (src/scenario): script
// parsing and validation, preset/example-file sync, target resolution
// against a real topology, RecoveryTracker arithmetic (driven with
// hand-written probe sequences and a null Simulator), campaign determinism
// across sweep thread counts, fault interactions with PFC pause state, and
// the link-restore transmit-kick regression.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/sweep_runner.h"
#include "src/core/trace_digest.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/net/port.h"
#include "src/scenario/recovery_tracker.h"
#include "src/scenario/scenario_engine.h"
#include "src/scenario/scenario_script.h"

namespace themis {
namespace {

// --- Script parsing ----------------------------------------------------------

TEST(ScenarioScriptTest, ParsesFullGrammar) {
  ScenarioScript script;
  std::string error;
  ASSERT_TRUE(ParseScenario(
      "# a comment\n"
      "seed 7\n"
      "sample-period 10us\n"
      "restore-fraction 0.8\n"
      "flap target=tor0:up0 at=2ms down=100us repeat=3 period=500us\n"
      "reboot target=spine1 at=5ms down=1ms\n"
      "gray target=spine0:* at=1ms duration=8ms drop=1e-4 corrupt=2e-4\n"
      "degrade target=tor1:up1 at=1ms duration=3ms factor=0.25\n",
      &script, &error))
      << error;
  EXPECT_EQ(script.seed, 7u);
  EXPECT_EQ(script.sample_period, 10 * kMicrosecond);
  EXPECT_DOUBLE_EQ(script.restore_fraction, 0.8);
  ASSERT_EQ(script.events.size(), 4u);

  const ScenarioEvent& flap = script.events[0];
  EXPECT_EQ(flap.kind, FaultKind::kLinkFlap);
  EXPECT_EQ(flap.target, "tor0:up0");
  EXPECT_EQ(flap.at, 2 * kMillisecond);
  EXPECT_EQ(flap.repeat, 3);
  EXPECT_EQ(flap.period, 500 * kMicrosecond);
  EXPECT_EQ(flap.down.dist, DownTimeSpec::Dist::kFixed);
  EXPECT_EQ(flap.down.a, 100 * kMicrosecond);

  const ScenarioEvent& reboot = script.events[1];
  EXPECT_EQ(reboot.kind, FaultKind::kSwitchReboot);
  EXPECT_EQ(reboot.target, "spine1");
  EXPECT_EQ(reboot.down.a, 1 * kMillisecond);

  const ScenarioEvent& gray = script.events[2];
  EXPECT_EQ(gray.kind, FaultKind::kGrayFailure);
  EXPECT_EQ(gray.duration, 8 * kMillisecond);
  EXPECT_DOUBLE_EQ(gray.drop_prob, 1e-4);
  EXPECT_DOUBLE_EQ(gray.corrupt_prob, 2e-4);

  const ScenarioEvent& degrade = script.events[3];
  EXPECT_EQ(degrade.kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(degrade.duration, 3 * kMillisecond);
  EXPECT_DOUBLE_EQ(degrade.factor, 0.25);
}

TEST(ScenarioScriptTest, ParsesDownTimeDistributions) {
  ScenarioScript script;
  std::string error;
  ASSERT_TRUE(ParseScenario(
      "flap target=a at=1us down=uniform:50us:150us\n"
      "flap target=b at=1us down=exp:100us\n",
      &script, &error))
      << error;
  EXPECT_EQ(script.events[0].down.dist, DownTimeSpec::Dist::kUniform);
  EXPECT_EQ(script.events[0].down.a, 50 * kMicrosecond);
  EXPECT_EQ(script.events[0].down.b, 150 * kMicrosecond);
  EXPECT_EQ(script.events[1].down.dist, DownTimeSpec::Dist::kExponential);
  EXPECT_EQ(script.events[1].down.a, 100 * kMicrosecond);
}

TEST(ScenarioScriptTest, ErrorsCarryLineNumbers) {
  ScenarioScript script;
  std::string error;
  EXPECT_FALSE(ParseScenario("seed 1\nbogus-directive foo\n", &script, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(ScenarioScriptTest, ValidationRejectsMalformedEvents) {
  ScenarioScript script;
  std::string error;
  // repeat > 1 without a period is ambiguous.
  EXPECT_FALSE(
      ParseScenario("flap target=a at=1us down=1us repeat=2\n", &script, &error));
  // flap/reboot need a down-time.
  EXPECT_FALSE(ParseScenario("flap target=a at=1us\n", &script, &error));
  EXPECT_FALSE(ParseScenario("reboot target=a at=1us\n", &script, &error));
  // gray needs a window and in-range probabilities.
  EXPECT_FALSE(ParseScenario("gray target=a at=1us drop=1e-3 corrupt=1e-3\n",
                             &script, &error));
  EXPECT_FALSE(ParseScenario(
      "gray target=a at=1us duration=1ms drop=1.5 corrupt=1e-3\n", &script, &error));
  // degrade factor must be in (0, 1) — 1.0 is "no fault", 0 is "down".
  EXPECT_FALSE(ParseScenario("degrade target=a at=1us duration=1ms factor=1.5\n",
                             &script, &error));
  EXPECT_FALSE(ParseScenario("degrade target=a at=1us duration=1ms factor=0\n",
                             &script, &error));
  // Times need a unit suffix.
  EXPECT_FALSE(ParseScenario("flap target=a at=100 down=1us\n", &script, &error));
}

TEST(ScenarioScriptTest, DownTimeDrawsAreSeededAndInRange) {
  DownTimeSpec fixed{DownTimeSpec::Dist::kFixed, 100 * kMicrosecond, 0};
  Rng rng(7);
  EXPECT_EQ(fixed.Draw(rng), 100 * kMicrosecond);

  DownTimeSpec uniform{DownTimeSpec::Dist::kUniform, 50 * kMicrosecond,
                       150 * kMicrosecond};
  Rng u1(42);
  Rng u2(42);
  for (int i = 0; i < 64; ++i) {
    const TimePs d = uniform.Draw(u1);
    EXPECT_GE(d, 50 * kMicrosecond);
    EXPECT_LE(d, 150 * kMicrosecond);
    EXPECT_EQ(d, uniform.Draw(u2));  // same stream, same draws
  }

  DownTimeSpec expo{DownTimeSpec::Dist::kExponential, 100 * kMicrosecond, 0};
  Rng e(42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_GE(expo.Draw(e), 0);
  }
}

bool ScriptsEqual(const ScenarioScript& a, const ScenarioScript& b) {
  if (a.seed != b.seed || a.sample_period != b.sample_period ||
      a.restore_fraction != b.restore_fraction ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    const ScenarioEvent& x = a.events[i];
    const ScenarioEvent& y = b.events[i];
    if (x.kind != y.kind || x.target != y.target || x.at != y.at ||
        x.repeat != y.repeat || x.period != y.period || x.down.dist != y.down.dist ||
        x.down.a != y.down.a || x.down.b != y.down.b || x.duration != y.duration ||
        x.drop_prob != y.drop_prob || x.corrupt_prob != y.corrupt_prob ||
        x.factor != y.factor) {
      return false;
    }
  }
  return true;
}

TEST(ScenarioScriptTest, PresetsStayInSyncWithExampleFiles) {
  // The built-in presets mirror the scripts under examples/scenarios/ so the
  // CLI, the bench, and the docs all name the same campaigns. This pins the
  // sync both ways.
  for (const std::string& name : ScenarioPresetNames()) {
    ScenarioScript preset;
    ASSERT_TRUE(ScenarioPreset(name, &preset)) << name;
    ScenarioScript file;
    std::string error;
    const std::string path =
        std::string(THEMIS_SOURCE_DIR) + "/examples/scenarios/" + name + ".scn";
    ASSERT_TRUE(LoadScenarioFile(path, &file, &error)) << path << ": " << error;
    EXPECT_TRUE(ScriptsEqual(preset, file)) << name << " diverged from " << path;
  }
  ScenarioScript unused;
  EXPECT_FALSE(ScenarioPreset("no-such-preset", &unused));
}

// --- Target resolution against a real topology -------------------------------

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.seed = 1;
  config.num_tors = 2;
  config.num_spines = 2;
  config.hosts_per_tor = 2;
  config.link_rate = Rate::Gbps(100);
  return config;
}

// Attaches `script_text` to a fresh small experiment; returns Attach's
// verdict and fills `error`.
bool TryAttach(const std::string& script_text, std::string* error) {
  ScenarioScript script;
  std::string parse_error;
  EXPECT_TRUE(ParseScenario(script_text, &script, &parse_error)) << parse_error;
  Experiment exp(SmallConfig());
  ScenarioEngine engine(&exp.sim(), script, /*default_seed=*/1);
  std::vector<RnicHost*> hosts;
  for (int i = 0; i < exp.host_count(); ++i) {
    hosts.push_back(exp.host(i));
  }
  return engine.Attach(exp.topology(), exp.themis(), hosts, error);
}

TEST(ScenarioEngineTest, ResolvesSwitchAndPortTargets) {
  std::string error;
  EXPECT_TRUE(TryAttach("flap target=tor0:up0 at=1us down=1us\n", &error)) << error;
  EXPECT_TRUE(TryAttach("flap target=tor0:p0 at=1us down=1us\n", &error)) << error;
  EXPECT_TRUE(TryAttach("gray target=spine0:* at=1us duration=1ms "
                        "drop=1e-3 corrupt=1e-3\n",
                        &error))
      << error;
  EXPECT_TRUE(TryAttach("gray target=spine*:up* at=1us duration=1ms "
                        "drop=1e-3 corrupt=1e-3\n",
                        &error))
      << error;
  EXPECT_TRUE(TryAttach("reboot target=spine1 at=1us down=1us\n", &error)) << error;
}

TEST(ScenarioEngineTest, AttachFailsLoudlyOnTypos) {
  // A chaos campaign that silently faults nothing is worse than a crash:
  // unknown switches, out-of-range ports, and port-qualified reboots must
  // all fail Attach with the offending event named.
  std::string error;
  EXPECT_FALSE(TryAttach("flap target=nosuch0:up0 at=1us down=1us\n", &error));
  EXPECT_NE(error.find("scenario event 1"), std::string::npos) << error;
  EXPECT_FALSE(TryAttach("flap target=tor0:p99 at=1us down=1us\n", &error));
  EXPECT_FALSE(TryAttach("flap target=tor0:up7 at=1us down=1us\n", &error));
  // Reboots take a whole switch, never a port expression.
  EXPECT_FALSE(TryAttach("reboot target=spine0:up0 at=1us down=1us\n", &error));
}

// --- RecoveryTracker arithmetic (null Simulator) ------------------------------

RecoveryTracker::Config TrackerConfig() {
  RecoveryTracker::Config config;
  config.sample_period = 10 * kMicrosecond;
  config.restore_fraction = 0.9;
  config.settle_ticks = 2;
  config.baseline_ticks = 4;
  return config;
}

TEST(RecoveryTrackerTest, MeasuresFirstDropToGoodputRestored) {
  RecoveryTracker tracker(nullptr, TrackerConfig());
  const TimePs tick = 10 * kMicrosecond;
  // Seed tick + 4 healthy ticks at 1000 bytes/tick -> baseline 1000.
  uint64_t bytes = 0;
  tracker.Tick(0, bytes, 0);
  for (int i = 1; i <= 4; ++i) {
    bytes += 1000;
    tracker.Tick(i * tick, bytes, 0);
  }

  const size_t id =
      tracker.OnFaultApplied(/*event_index=*/0, /*occurrence=*/0,
                             FaultKind::kGrayFailure, /*now=*/5 * tick);
  EXPECT_EQ(tracker.open_faults(), 1u);
  EXPECT_DOUBLE_EQ(tracker.records()[id].baseline_goodput, 1000.0);

  // Outage: goodput collapses, drops appear at tick 6.
  bytes += 100;
  tracker.Tick(6 * tick, bytes, /*drops=*/3);
  bytes += 100;
  tracker.Tick(7 * tick, bytes, 5);
  EXPECT_EQ(tracker.records()[id].first_drop, 6 * tick);
  EXPECT_EQ(tracker.records()[id].drops_during, 5u);

  tracker.OnFaultCleared(id, 8 * tick);
  EXPECT_EQ(tracker.open_faults(), 0u);
  EXPECT_EQ(tracker.records()[id].cleared, 8 * tick);

  // Recovery ramp: one weak tick (resets the settle counter), then two
  // consecutive ticks at >= 0.9 * baseline -> recovered on the second.
  bytes += 500;
  tracker.Tick(9 * tick, bytes, 5);
  bytes += 950;
  tracker.Tick(10 * tick, bytes, 5);
  EXPECT_EQ(tracker.records()[id].recovered, -1);
  bytes += 1000;
  tracker.Tick(11 * tick, bytes, 5);

  const FaultRecord& record = tracker.records()[id];
  EXPECT_EQ(record.recovered, 11 * tick);
  EXPECT_EQ(record.RecoveryTimePs(), 11 * tick - 6 * tick);
  EXPECT_EQ(tracker.faults_recovered(), 1u);
}

TEST(RecoveryTrackerTest, NoDropFaultMeasuresFromApply) {
  // A flap parks queued packets instead of dropping them, so the damage
  // window starts at the injection itself (RTO stalls begin there).
  RecoveryTracker tracker(nullptr, TrackerConfig());
  const TimePs tick = 10 * kMicrosecond;
  uint64_t bytes = 0;
  tracker.Tick(0, bytes, 0);
  for (int i = 1; i <= 4; ++i) {
    bytes += 1000;
    tracker.Tick(i * tick, bytes, 0);
  }
  const size_t id =
      tracker.OnFaultApplied(0, 0, FaultKind::kLinkFlap, /*now=*/5 * tick);
  bytes += 0;
  tracker.Tick(6 * tick, bytes, 0);  // stalled, but no drops
  tracker.OnFaultCleared(id, 7 * tick);
  bytes += 950;
  tracker.Tick(8 * tick, bytes, 0);
  bytes += 950;
  tracker.Tick(9 * tick, bytes, 0);

  const FaultRecord& record = tracker.records()[id];
  EXPECT_EQ(record.first_drop, -1);
  EXPECT_EQ(record.recovered, 9 * tick);
  EXPECT_EQ(record.RecoveryTimePs(), 9 * tick - 5 * tick);
}

TEST(RecoveryTrackerTest, RunEndingMidFaultLeavesRecordOpen) {
  RecoveryTracker tracker(nullptr, TrackerConfig());
  uint64_t bytes = 0;
  tracker.Tick(0, bytes, 0);
  bytes += 1000;
  tracker.Tick(10 * kMicrosecond, bytes, 0);
  const size_t id =
      tracker.OnFaultApplied(0, 0, FaultKind::kSwitchReboot, 20 * kMicrosecond);
  tracker.Finalize(30 * kMicrosecond);

  const FaultRecord& record = tracker.records()[id];
  EXPECT_EQ(record.cleared, -1);
  EXPECT_EQ(record.recovered, -1);
  EXPECT_EQ(record.RecoveryTimePs(), -1);
}

TEST(RecoveryTrackerTest, FaultBeforeAnyBaselineRecoversAtClear) {
  // No healthy tick ever happened: there is no reference goodput level to
  // wait for, so the fault counts as recovered the moment it clears.
  RecoveryTracker tracker(nullptr, TrackerConfig());
  const size_t id = tracker.OnFaultApplied(0, 0, FaultKind::kLinkFlap, 0);
  tracker.OnFaultCleared(id, 50 * kMicrosecond);
  EXPECT_EQ(tracker.records()[id].recovered, 50 * kMicrosecond);
  EXPECT_EQ(tracker.faults_recovered(), 1u);
}

TEST(RecoveryTrackerTest, VictimsAccumulate) {
  RecoveryTracker tracker(nullptr, TrackerConfig());
  const size_t id = tracker.OnFaultApplied(0, 0, FaultKind::kLinkFlap, 0);
  tracker.AddVictims(id, 3);
  tracker.AddVictims(id, 2);
  EXPECT_EQ(tracker.records()[id].victim_flows, 5u);
}

// --- Campaign integration ----------------------------------------------------

// Digest of one campaign run on the small fabric, including the full fault
// records — the quantity that must be invariant across repeats and sweep
// threading. The 4 MB collective runs ~420 us clean, so both fault windows
// land inside live traffic.
uint64_t SmallCampaignHash(uint64_t seed) {
  ExperimentConfig config = DeterminismConfig(Scheme::kThemis, seed);
  ScenarioScript script;
  std::string error;
  EXPECT_TRUE(ParseScenario(
      "seed 5\n"
      "sample-period 20us\n"
      "flap target=tor0:up0 at=150us down=uniform:40us:120us\n"
      "gray target=spine1:* at=300us duration=250us drop=5e-3 corrupt=5e-3\n",
      &script, &error))
      << error;
  config.scenario = script;
  Experiment exp(config);
  auto result = exp.RunCollective(CollectiveKind::kAllreduce, exp.MakeCrossRackGroups(2),
                                  4 << 20, 10 * kSecond);
  exp.scenario()->Finalize();
  uint64_t h = DigestExperiment(exp);
  h = FnvMix(h, result.all_done ? 1 : 0);
  for (const FaultRecord& f : exp.scenario()->tracker().records()) {
    h = FnvMix(h, static_cast<uint64_t>(f.applied));
    h = FnvMix(h, static_cast<uint64_t>(f.cleared));
    h = FnvMix(h, static_cast<uint64_t>(f.first_drop));
    h = FnvMix(h, static_cast<uint64_t>(f.recovered));
    h = FnvMix(h, f.drops_during);
    h = FnvMix(h, f.victim_flows);
  }
  return h;
}

TEST(ScenarioEngineTest, CampaignsIndependentOfSweepThreadCount) {
  // Campaign draws come from private MixSeed streams, never the simulator
  // RNG, so a sweep of chaos runs must be byte-identical on 1 worker or 4.
  const std::vector<uint64_t> seeds = {1, 2, 3, 4};
  SweepRunner serial(1);
  SweepRunner wide(4);
  const auto a = serial.Map(seeds, [](uint64_t s) { return SmallCampaignHash(s); });
  const auto b = wide.Map(seeds, [](uint64_t s) { return SmallCampaignHash(s); });
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "seed " << seeds[i];
  }
  // And re-running the same campaign reproduces it exactly.
  EXPECT_EQ(SmallCampaignHash(1), a[0]);
}

TEST(ScenarioEngineTest, GrayWindowProducesWireDropsAndCrcDrops) {
  // A hot gray window must surface on both sides of the fidelity boundary:
  // wire losses (gray_drops) and corrupted arrivals CRC-dropped downstream,
  // with the engine harvesting the tallies. The target is a ToR — its
  // host-facing downlinks corrupt packets that land on NICs (host
  // corrupt_rx), its uplinks corrupt packets CRC-dropped at spine ingress.
  // 8 MB keeps the 100..700 us window inside the run (~800 us clean).
  ExperimentConfig config = DeterminismConfig(Scheme::kThemis, 1);
  ScenarioScript script;
  std::string error;
  ASSERT_TRUE(ParseScenario("seed 5\nsample-period 20us\n"
                            "gray target=tor0:* at=100us duration=600us "
                            "drop=0.05 corrupt=0.05\n",
                            &script, &error))
      << error;
  config.scenario = script;
  Experiment exp(config);
  ASSERT_NE(exp.scenario(), nullptr);
  exp.RunCollective(CollectiveKind::kAllreduce, exp.MakeCrossRackGroups(2), 8 << 20,
                    10 * kSecond);
  exp.scenario()->Finalize();

  const ScenarioEngineStats& stats = exp.scenario()->stats();
  EXPECT_EQ(stats.faults_applied, 1u);
  EXPECT_EQ(stats.gray_windows, 1u);
  EXPECT_GT(stats.gray_drops, 0u);
  EXPECT_GT(stats.gray_corrupts, 0u);
  uint64_t corrupt_rx = 0;
  for (int i = 0; i < exp.host_count(); ++i) {
    corrupt_rx += exp.host(i)->stats().corrupt_rx;
  }
  EXPECT_GT(corrupt_rx, 0u);
  // The fault must actually hurt and then heal: a record exists and closed.
  ASSERT_EQ(exp.scenario()->tracker().records().size(), 1u);
  const FaultRecord& record = exp.scenario()->tracker().records()[0];
  EXPECT_GE(record.cleared, record.applied);
  EXPECT_GT(record.drops_during, 0u);
}

TEST(ScenarioEngineTest, RebootDuringGraceWindowStillCompletes) {
  // A spine reboot under PFC (the Themis-D NACK-validity grace window armed
  // by pauses) must not wedge the run: flows retransmit around the outage
  // and the collective completes. The reboot also flushes the switch's
  // Themis flow state — dataplane registers do not survive power cycles —
  // which the post-restore traffic must rebuild transparently.
  ExperimentConfig config = DeterminismConfig(Scheme::kThemis, 1, /*pfc=*/true);
  ScenarioScript script;
  std::string error;
  ASSERT_TRUE(ParseScenario("seed 9\nsample-period 20us\n"
                            "reboot target=spine0 at=200us down=300us\n",
                            &script, &error))
      << error;
  config.scenario = script;
  Experiment exp(config);
  auto result = exp.RunCollective(CollectiveKind::kAllreduce, exp.MakeCrossRackGroups(2),
                                  8 << 20, 10 * kSecond);
  exp.scenario()->Finalize();

  EXPECT_TRUE(result.all_done);
  const ScenarioEngineStats& stats = exp.scenario()->stats();
  EXPECT_EQ(stats.faults_applied, 1u);
  EXPECT_EQ(stats.faults_cleared, 1u);
  EXPECT_GT(stats.ports_failed, 0u);
  ASSERT_EQ(exp.scenario()->tracker().records().size(), 1u);
  EXPECT_EQ(exp.scenario()->tracker().records()[0].cleared,
            200 * kMicrosecond + 300 * kMicrosecond);
}

// --- Port-level fault mechanics ----------------------------------------------

class SinkNode : public Node {
 public:
  SinkNode(Simulator* sim, int id, std::string name = "sink")
      : Node(sim, id, NodeKind::kHost, std::move(name)) {}
  void ReceivePacket(const Packet& pkt, int in_port) override {
    arrivals.push_back(pkt);
    (void)in_port;
  }
  std::vector<Packet> arrivals;
};

TEST(ScenarioPortTest, RestoreKicksParkedPackets) {
  // Regression: a failed port parks its queued packets; restoring the link
  // must restart the transmit loop immediately. Before the set_failed(false)
  // kick, parked packets waited for the next unrelated enqueue — on an idle
  // link, forever.
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);  // 1500 B wire = 12 us serialization
  spec.propagation_delay = 0;
  DuplexLink link = net.Connect(a, b, spec);
  Port* ab = a->port(link.a.port);

  for (uint32_t i = 0; i < 3; ++i) {
    ab->Send(MakeDataPacket(1, 0, 1, i, 1436, 0));
  }
  // psn 0 serializes 0-12us, psn 1 12-24us. Fail mid-flight of psn 1: it is
  // dropped on completion, psn 2 stays parked in the data queue.
  sim.ScheduleAt(13 * kMicrosecond, [ab] { ab->set_failed(true); });
  sim.ScheduleAt(50 * kMicrosecond, [ab] { ab->set_failed(false); });
  sim.Run();

  ASSERT_EQ(b->arrivals.size(), 2u);
  EXPECT_EQ(b->arrivals[0].psn, 0u);
  EXPECT_EQ(b->arrivals[1].psn, 2u);  // parked packet resumed on restore
  EXPECT_EQ(ab->stats().drops, 1u);   // the mid-flight psn 1
}

TEST(ScenarioPortTest, FlapDuringPauseHoldsDataUntilBothClear) {
  // A flap on a paused port: restore must NOT leak data past an still-
  // asserted PFC pause — the transmit kick re-enters StartNextTransmission,
  // which keeps honouring paused_. Data flows only after both the failure
  // and the pause clear.
  Simulator sim;
  Network net(&sim);
  SinkNode* a = net.MakeNode<SinkNode>("a");
  SinkNode* b = net.MakeNode<SinkNode>("b");
  LinkSpec spec;
  spec.rate = Rate::Gbps(1);
  spec.propagation_delay = 0;
  DuplexLink link = net.Connect(a, b, spec);
  Port* ab = a->port(link.a.port);

  sim.ScheduleAt(0, [ab] {
    ab->SetPaused(true);
    ab->Send(MakeDataPacket(1, 0, 1, 0, 1436, 0));  // held by the pause
  });
  sim.ScheduleAt(10 * kMicrosecond, [ab] { ab->set_failed(true); });
  sim.ScheduleAt(20 * kMicrosecond, [ab] { ab->set_failed(false); });  // still paused
  TimePs delivered_while_paused = -1;
  sim.ScheduleAt(30 * kMicrosecond, [&, ab, b] {
    delivered_while_paused = static_cast<TimePs>(b->arrivals.size());
    ab->SetPaused(false);
  });
  sim.Run();

  EXPECT_EQ(delivered_while_paused, 0);  // restore alone must not release data
  ASSERT_EQ(b->arrivals.size(), 1u);     // unpause finally releases it
  EXPECT_EQ(ab->stats().drops, 0u);      // parked, never dropped
}

}  // namespace
}  // namespace themis
