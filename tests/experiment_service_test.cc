// Tests for the sharded, resumable experiment service
// (src/experiment_service): manifest round-trip and slicing, shard
// invariance (merged output byte-identical to a single-process run for any
// shard count and completion order), resume (only journal-missing points
// re-execute), merge failure modes, journal framing, telemetry counters, and
// the config-hash golden table.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/experiment_service/config_hash.h"
#include "src/experiment_service/grids.h"
#include "src/experiment_service/journal.h"
#include "src/experiment_service/manifest.h"
#include "src/experiment_service/merge.h"
#include "src/experiment_service/shard_executor.h"
#include "src/telemetry/counters.h"

namespace themis {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Fresh scratch directory per test case.
std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/expsvc_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- Synthetic grid ---------------------------------------------------------
//
// 24 deterministic points with deliberately non-uniform row counts: most
// points emit one CSV row, every 5th-but-2 point emits two, and every
// 5th-but-4 emits none (the "failed case writes no row" convention the FCT
// grid uses). `runs`, when given, counts executions per point.

constexpr int kSyntheticPoints = 24;

uint64_t SyntheticHash(uint32_t index) {
  ConfigHasher h;
  h.Field("synthetic.index", static_cast<uint64_t>(index));
  return h.hash();
}

std::vector<std::string> SyntheticRows(uint32_t i) {
  if (i % 5 == 4) {
    return {};
  }
  const std::string row = std::to_string(i) + "," + std::to_string(i * i);
  if (i % 5 == 2) {
    return {row, std::to_string(i) + ",extra"};
  }
  return {row};
}

GridDef SyntheticGrid(std::vector<std::atomic<int>>* runs = nullptr) {
  GridDef grid;
  grid.name = "synthetic";
  grid.csv_header = "point,value";
  for (uint32_t i = 0; i < kSyntheticPoints; ++i) {
    GridCase gc;
    gc.point.index = i;
    gc.point.config_hash = SyntheticHash(i);
    gc.point.seed = i;
    gc.point.name = "synthetic point " + std::to_string(i);
    gc.run = [i, runs]() {
      if (runs != nullptr) {
        ++(*runs)[i];
      }
      return SyntheticRows(i);
    };
    grid.cases.push_back(std::move(gc));
  }
  return grid;
}

// Runs every shard of `grid` (in the given shard order) and merges into
// `out_csv`. Returns false on the first failure.
bool RunShardsAndMerge(const GridDef& grid, const std::string& dir, int shard_count,
                       const std::vector<int>& shard_order, int threads,
                       const std::string& out_csv, std::string* error) {
  const SweepManifest manifest = GridManifest(grid);
  for (int shard_index : shard_order) {
    ShardOptions options;
    options.shard_count = shard_count;
    options.shard_index = shard_index;
    options.dir = dir;
    options.threads = threads;
    ShardExecutor executor(manifest, options);
    if (!executor.Run(
            [&grid](const ManifestPoint& point) { return grid.cases[point.index].run(); },
            error)) {
      return false;
    }
  }
  return MergeShardDir(manifest, dir, shard_count, out_csv, error);
}

// --- Manifest ----------------------------------------------------------------

TEST(ManifestTest, WriteLoadRoundTrip) {
  const std::string dir = ScratchDir("manifest_roundtrip");
  const GridDef grid = SyntheticGrid();
  const SweepManifest manifest = GridManifest(grid);

  std::string error;
  ASSERT_TRUE(manifest.Write(dir + "/m.manifest", &error)) << error;
  SweepManifest loaded;
  ASSERT_TRUE(SweepManifest::Load(dir + "/m.manifest", &loaded, &error)) << error;

  EXPECT_EQ(loaded.grid, manifest.grid);
  EXPECT_EQ(loaded.csv_header, manifest.csv_header);
  ASSERT_EQ(loaded.points.size(), manifest.points.size());
  for (size_t i = 0; i < manifest.points.size(); ++i) {
    EXPECT_EQ(loaded.points[i].index, manifest.points[i].index);
    EXPECT_EQ(loaded.points[i].config_hash, manifest.points[i].config_hash);
    EXPECT_EQ(loaded.points[i].seed, manifest.points[i].seed);
    // Names carry spaces; the parser must keep the rest of the line intact.
    EXPECT_EQ(loaded.points[i].name, manifest.points[i].name);
  }
}

TEST(ManifestTest, LoadRejectsPointCountMismatch) {
  const std::string dir = ScratchDir("manifest_badcount");
  std::ofstream out(dir + "/m.manifest");
  out << "# themis sweep manifest v1\ngrid g\nheader a,b\npoints 2\n"
      << "point 0 0000000000000001 1 only one\n";
  out.close();
  SweepManifest loaded;
  std::string error;
  EXPECT_FALSE(SweepManifest::Load(dir + "/m.manifest", &loaded, &error));
  EXPECT_NE(error.find("point"), std::string::npos) << error;
}

TEST(ManifestTest, ShardSlicePartitionsEveryPointExactlyOnce) {
  const SweepManifest manifest = GridManifest(SyntheticGrid());
  for (int shard_count : {1, 2, 3, 7, kSyntheticPoints, kSyntheticPoints + 5}) {
    std::vector<int> covered(manifest.points.size(), 0);
    for (int shard = 0; shard < shard_count; ++shard) {
      for (size_t pos : manifest.ShardSlice(shard_count, shard)) {
        ASSERT_LT(pos, manifest.points.size());
        ++covered[pos];
        EXPECT_EQ(static_cast<int>(manifest.points[pos].index % shard_count), shard);
      }
    }
    for (size_t i = 0; i < covered.size(); ++i) {
      EXPECT_EQ(covered[i], 1) << "shard_count=" << shard_count << " point " << i;
    }
  }
  EXPECT_TRUE(manifest.ShardSlice(0, 0).empty());
  EXPECT_TRUE(manifest.ShardSlice(3, 3).empty());
  EXPECT_TRUE(manifest.ShardSlice(3, -1).empty());
}

// --- Shard invariance (satellite 1) ------------------------------------------

TEST(ShardInvarianceTest, MergedCsvByteIdenticalForAnyShardCountAndOrder) {
  const std::string dir = ScratchDir("invariance");
  const GridDef grid = SyntheticGrid();

  std::string error;
  const std::string ref_csv = dir + "/reference.csv";
  ASSERT_TRUE(RunGridSingleProcess(grid, /*threads=*/1, ref_csv, &error)) << error;
  const std::string reference = ReadFile(ref_csv);
  ASSERT_FALSE(reference.empty());

  // Shards executed out of order (reversed and interleaved), with a thread
  // pool, so journal append order differs wildly from point order.
  const std::vector<std::vector<int>> orders = {
      {0}, {1, 0}, {2, 0, 1}, {5, 1, 6, 0, 3, 2, 4}};
  const int shard_counts[] = {1, 2, 3, 7};
  for (size_t i = 0; i < 4; ++i) {
    const std::string subdir = dir + "/n" + std::to_string(shard_counts[i]);
    std::filesystem::create_directories(subdir);
    const std::string merged_csv = subdir + "/merged.csv";
    ASSERT_TRUE(RunShardsAndMerge(grid, subdir, shard_counts[i], orders[i], /*threads=*/3,
                                  merged_csv, &error))
        << error;
    EXPECT_EQ(ReadFile(merged_csv), reference) << "shard_count=" << shard_counts[i];
  }
}

TEST(ShardInvarianceTest, SingleProcessOutputIdenticalAcrossThreadCounts) {
  const std::string dir = ScratchDir("thread_invariance");
  const GridDef grid = SyntheticGrid();
  std::string error;
  ASSERT_TRUE(RunGridSingleProcess(grid, 1, dir + "/t1.csv", &error)) << error;
  ASSERT_TRUE(RunGridSingleProcess(grid, 5, dir + "/t5.csv", &error)) << error;
  EXPECT_EQ(ReadFile(dir + "/t1.csv"), ReadFile(dir + "/t5.csv"));
}

// The acceptance gate: the real FCT smoke grid, sharded {1, 2, 3, 7} ways,
// must merge to the exact byte stream of the single-process sweep.
TEST(ShardInvarianceTest, FctSmokeGridMergesByteIdentical) {
  const std::string dir = ScratchDir("fct_smoke");
  const GridDef grid = FctGridDef(/*smoke=*/true);
  ASSERT_EQ(grid.cases.size(), 16u);

  std::string error;
  const std::string ref_csv = dir + "/reference.csv";
  ASSERT_TRUE(RunGridSingleProcess(grid, /*threads=*/0, ref_csv, &error)) << error;
  const std::string reference = ReadFile(ref_csv);
  ASSERT_GT(reference.size(), std::string(kFctCsvHeader).size());

  for (int shard_count : {1, 2, 3, 7}) {
    const std::string subdir = dir + "/n" + std::to_string(shard_count);
    std::filesystem::create_directories(subdir);
    // Run shards highest-first: completion order is the reverse of manifest
    // order, which the merge must not care about.
    std::vector<int> order;
    for (int s = shard_count - 1; s >= 0; --s) {
      order.push_back(s);
    }
    const std::string merged_csv = subdir + "/merged.csv";
    ASSERT_TRUE(
        RunShardsAndMerge(grid, subdir, shard_count, order, /*threads=*/0, merged_csv, &error))
        << error;
    EXPECT_EQ(ReadFile(merged_csv), reference) << "shard_count=" << shard_count;
  }
}

// --- Resume (satellite 2) -----------------------------------------------------

TEST(ResumeTest, TruncatedJournalRecomputesOnlyMissingPoints) {
  const std::string dir = ScratchDir("resume_truncate");
  std::vector<std::atomic<int>> runs(kSyntheticPoints);
  const GridDef grid = SyntheticGrid(&runs);
  const SweepManifest manifest = GridManifest(grid);

  // Full single-shard run, then cut the journal mid-grid: keep the first 9
  // complete records and append a torn half-record, as if the shard had been
  // killed mid-write.
  ShardOptions options;
  options.dir = dir;
  options.threads = 2;
  std::string error;
  {
    ShardExecutor executor(manifest, options);
    ASSERT_TRUE(executor.Run(
        [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
        << error;
    EXPECT_EQ(executor.stats().points_done, static_cast<uint64_t>(kSyntheticPoints));
  }
  const std::string journal_path = ShardJournalPath(dir, manifest.grid, 0, 1);
  std::vector<JournalRecord> records = LoadJournal(journal_path);
  ASSERT_EQ(records.size(), static_cast<size_t>(kSyntheticPoints));
  constexpr size_t kKeep = 9;
  std::vector<bool> journaled(kSyntheticPoints, false);
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(journal_path, /*append=*/false, &error)) << error;
    for (size_t i = 0; i < kKeep; ++i) {
      ASSERT_TRUE(writer.Append(records[i]));
      journaled[records[i].index] = true;
    }
    writer.Close();
    std::ofstream torn(journal_path, std::ios::app | std::ios::binary);
    torn << "begin " << records[kKeep].index << " DEADBEEF 2\nrow 1,torn\n";  // no end
  }

  for (auto& r : runs) {
    r = 0;
  }
  ShardOptions resume = options;
  resume.resume = true;
  ShardExecutor executor(manifest, resume);
  ASSERT_TRUE(executor.Run(
      [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
      << error;

  // Exactly the journal-missing points (including the torn one) re-executed.
  EXPECT_EQ(executor.stats().points_skipped, static_cast<uint64_t>(kKeep));
  EXPECT_EQ(executor.stats().points_done, static_cast<uint64_t>(kSyntheticPoints - kKeep));
  for (int i = 0; i < kSyntheticPoints; ++i) {
    EXPECT_EQ(runs[i].load(), journaled[i] ? 0 : 1) << "point " << i;
  }

  // And the merge is exactly what an uninterrupted run produces.
  const std::string ref_csv = dir + "/reference.csv";
  ASSERT_TRUE(RunGridSingleProcess(grid, 1, ref_csv, &error)) << error;
  const std::string merged_csv = dir + "/merged.csv";
  ASSERT_TRUE(MergeShardDir(manifest, dir, 1, merged_csv, &error)) << error;
  EXPECT_EQ(ReadFile(merged_csv), ReadFile(ref_csv));
}

TEST(ResumeTest, EditedPointRecomputesOnlyThatPoint) {
  const std::string dir = ScratchDir("resume_edit");
  std::vector<std::atomic<int>> runs(kSyntheticPoints);
  GridDef grid = SyntheticGrid(&runs);

  std::string error;
  {
    ShardOptions options;
    options.dir = dir;
    ShardExecutor executor(GridManifest(grid), options);
    ASSERT_TRUE(executor.Run(
        [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
        << error;
  }

  // "Edit" point 7: its inputs — and therefore its config hash — change, so
  // its journal record is stale; every other record still matches.
  constexpr uint32_t kEdited = 7;
  ConfigHasher h;
  h.Field("synthetic.index", static_cast<uint64_t>(kEdited));
  h.Field("synthetic.version", 2);
  grid.cases[kEdited].point.config_hash = h.hash();
  grid.cases[kEdited].run = [&runs]() -> std::vector<std::string> {
    ++runs[kEdited];
    return {"7,edited"};
  };

  for (auto& r : runs) {
    r = 0;
  }
  ShardOptions resume;
  resume.dir = dir;
  resume.resume = true;
  const SweepManifest manifest = GridManifest(grid);
  ShardExecutor executor(manifest, resume);
  ASSERT_TRUE(executor.Run(
      [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
      << error;

  EXPECT_EQ(executor.stats().points_done, 1u);
  EXPECT_EQ(executor.stats().points_skipped, static_cast<uint64_t>(kSyntheticPoints - 1));
  for (uint32_t i = 0; i < kSyntheticPoints; ++i) {
    EXPECT_EQ(runs[i].load(), i == kEdited ? 1 : 0) << "point " << i;
  }

  // The merged CSV picks up the edited row (the stale record is invisible).
  const std::string merged_csv = dir + "/merged.csv";
  ASSERT_TRUE(MergeShardDir(manifest, dir, 1, merged_csv, &error)) << error;
  const std::string merged = ReadFile(merged_csv);
  EXPECT_NE(merged.find("7,edited"), std::string::npos);
  EXPECT_EQ(merged.find("7,49"), std::string::npos);
}

TEST(ResumeTest, FreshRunWithoutResumeRecomputesEverything) {
  const std::string dir = ScratchDir("resume_off");
  std::vector<std::atomic<int>> runs(kSyntheticPoints);
  const GridDef grid = SyntheticGrid(&runs);
  const SweepManifest manifest = GridManifest(grid);
  std::string error;
  for (int pass = 0; pass < 2; ++pass) {
    ShardOptions options;
    options.dir = dir;
    ShardExecutor executor(manifest, options);
    ASSERT_TRUE(executor.Run(
        [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
        << error;
    EXPECT_EQ(executor.stats().points_skipped, 0u) << "pass " << pass;
  }
  for (int i = 0; i < kSyntheticPoints; ++i) {
    EXPECT_EQ(runs[i].load(), 2) << "point " << i;
  }
}

// --- Failure propagation ------------------------------------------------------

TEST(ShardExecutorTest, ThrowingPointFailsShardButJournalsTheRest) {
  const std::string dir = ScratchDir("throwing_point");
  GridDef grid = SyntheticGrid();
  grid.cases[3].run = []() -> std::vector<std::string> {
    throw std::runtime_error("simulated crash in point 3");
  };
  const SweepManifest manifest = GridManifest(grid);

  ShardOptions options;
  options.dir = dir;
  options.threads = 2;
  std::string error;
  ShardExecutor executor(manifest, options);
  EXPECT_FALSE(executor.Run(
      [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error));
  EXPECT_NE(error.find("point 3"), std::string::npos) << error;
  EXPECT_EQ(executor.stats().points_failed, 1u);
  EXPECT_EQ(executor.stats().points_done, static_cast<uint64_t>(kSyntheticPoints - 1));

  // The failed point has no journal record; a resumed run retries only it.
  const std::vector<JournalRecord> records =
      LoadJournal(ShardJournalPath(dir, manifest.grid, 0, 1));
  EXPECT_EQ(records.size(), static_cast<size_t>(kSyntheticPoints - 1));
  for (const JournalRecord& r : records) {
    EXPECT_NE(r.index, 3u);
  }

  grid.cases[3].run = []() -> std::vector<std::string> { return {"3,9"}; };
  ShardOptions resume = options;
  resume.resume = true;
  ShardExecutor retry(manifest, resume);
  ASSERT_TRUE(retry.Run(
      [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
      << error;
  EXPECT_EQ(retry.stats().points_done, 1u);
  EXPECT_EQ(retry.stats().points_skipped, static_cast<uint64_t>(kSyntheticPoints - 1));
}

TEST(ShardExecutorTest, RejectsOutOfRangeShardIndex) {
  ShardOptions options;
  options.shard_count = 3;
  options.shard_index = 3;
  std::string error;
  ShardExecutor executor(GridManifest(SyntheticGrid()), options);
  EXPECT_FALSE(executor.Run([](const ManifestPoint&) { return std::vector<std::string>{}; },
                            &error));
  EXPECT_FALSE(error.empty());
}

// --- Merge failure modes ------------------------------------------------------

TEST(MergeTest, MissingPointsProduceActionableError) {
  const std::string dir = ScratchDir("merge_missing");
  const GridDef grid = SyntheticGrid();
  const SweepManifest manifest = GridManifest(grid);

  // Run only shard 0 of 2; the merge over both journals must name the gap.
  ShardOptions options;
  options.shard_count = 2;
  options.dir = dir;
  std::string error;
  ShardExecutor executor(manifest, options);
  ASSERT_TRUE(executor.Run(
      [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
      << error;

  EXPECT_FALSE(MergeShardDir(manifest, dir, 2, dir + "/merged.csv", &error));
  EXPECT_NE(error.find("merge incomplete"), std::string::npos) << error;
}

TEST(MergeTest, ConflictingRowsForOnePointAreAnError) {
  const std::string dir = ScratchDir("merge_conflict");
  const GridDef grid = SyntheticGrid();
  const SweepManifest manifest = GridManifest(grid);

  std::string error;
  {
    ShardExecutor executor(manifest, [&] {
      ShardOptions o;
      o.dir = dir;
      return o;
    }());
    ASSERT_TRUE(executor.Run(
        [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
        << error;
  }

  // A second journal claims a different result for point 1 under the same
  // config hash — a broken "pure function of its inputs" contract.
  const std::string evil_path = dir + "/evil.journal";
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(evil_path, /*append=*/false, &error)) << error;
    JournalRecord record;
    record.index = 1;
    record.config_hash = manifest.points[1].config_hash;
    record.rows = {"1,not what the grid computes"};
    ASSERT_TRUE(writer.Append(record));
  }
  EXPECT_FALSE(MergeJournals(manifest,
                             {ShardJournalPath(dir, manifest.grid, 0, 1), evil_path},
                             dir + "/merged.csv", &error));
  EXPECT_NE(error.find("conflicting"), std::string::npos) << error;
}

// --- Journal framing ----------------------------------------------------------

TEST(JournalTest, EmptyAndMultiRowRecordsRoundTrip) {
  const std::string dir = ScratchDir("journal_roundtrip");
  const std::string path = dir + "/j.journal";
  std::string error;
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(path, /*append=*/false, &error)) << error;
    ASSERT_TRUE(writer.Append({0, 0xAAULL, {}}));  // failed case: zero rows
    ASSERT_TRUE(writer.Append({1, 0xBBULL, {"a,1"}}));
    ASSERT_TRUE(writer.Append({2, 0xCCULL, {"b,2", "", "c,3"}}));  // empty row kept
  }
  const std::vector<JournalRecord> records = LoadJournal(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].rows.empty());
  EXPECT_EQ(records[1].rows, (std::vector<std::string>{"a,1"}));
  EXPECT_EQ(records[2].rows, (std::vector<std::string>{"b,2", "", "c,3"}));
}

TEST(JournalTest, TruncatedTailIsDroppedNotFatal) {
  const std::string dir = ScratchDir("journal_torn");
  const std::string path = dir + "/j.journal";
  std::string error;
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(path, /*append=*/false, &error)) << error;
    ASSERT_TRUE(writer.Append({0, 0x1ULL, {"a"}}));
  }
  std::ofstream torn(path, std::ios::app | std::ios::binary);
  torn << "begin 1 00000000000000FF 2\nrow b\n";  // killed before `end`
  torn.close();
  const std::vector<JournalRecord> records = LoadJournal(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].index, 0u);
}

TEST(JournalTest, LastCompleteRecordWinsForARepeatedPoint) {
  const std::string dir = ScratchDir("journal_rewrite");
  const std::string path = dir + "/j.journal";
  std::string error;
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(path, /*append=*/false, &error)) << error;
    ASSERT_TRUE(writer.Append({4, 0x1ULL, {"stale"}}));
    ASSERT_TRUE(writer.Append({4, 0x2ULL, {"fresh"}}));
  }
  const std::vector<JournalRecord> records = LoadJournal(path);
  ASSERT_EQ(records.size(), 2u);  // loader returns both; consumers key last-wins
  EXPECT_EQ(records.back().config_hash, 0x2ULL);
  EXPECT_EQ(records.back().rows, (std::vector<std::string>{"fresh"}));
}

TEST(JournalTest, MissingFileIsAFreshShard) {
  EXPECT_TRUE(LoadJournal(testing::TempDir() + "/expsvc_does_not_exist.journal").empty());
}

// --- Telemetry counters -------------------------------------------------------

TEST(TelemetryTest, ShardCountersExposeRunStats) {
  const std::string dir = ScratchDir("counters");
  const GridDef grid = SyntheticGrid();
  ShardOptions options;
  options.dir = dir;
  std::string error;
  ShardExecutor executor(GridManifest(grid), options);
  ASSERT_TRUE(executor.Run(
      [&grid](const ManifestPoint& p) { return grid.cases[p.index].run(); }, &error))
      << error;

  CounterRegistry registry;
  executor.RegisterCounters(&registry);
  const auto read = [&](const char* name) {
    const int i = registry.Find(name);
    EXPECT_GE(i, 0) << name;
    return i >= 0 ? registry.Read(static_cast<size_t>(i)) : -1.0;
  };
  EXPECT_EQ(read("sweep.points_done"), static_cast<double>(kSyntheticPoints));
  EXPECT_EQ(read("sweep.points_skipped"), 0.0);
  EXPECT_EQ(read("sweep.points_failed"), 0.0);
  EXPECT_GE(read("sweep.shard_wall_ms"), 0.0);
}

// --- Config-hash goldens (satellite 3) ---------------------------------------

struct ConfigHashGolden {
  const char* label;
  uint64_t hash;
};

// Regenerate with `cmake --build build --target regen-goldens` — never by
// hand. A row changing means the canonical serialization of some existing
// field drifted (or a golden case's inputs changed); adding a field to
// ExperimentConfig adds a line to every case's canonical text and therefore
// changes every row, which is exactly the loud failure we want (see
// config_hash.h).
// CONFIG-HASH-GOLDEN-BEGIN
const ConfigHashGolden kConfigHashGoldens[] = {
    {"default", 0x1279C45AD616B6A8ULL},
    {"fattree16-fluid", 0x6550EF28E3678B35ULL},
    {"themis-s-nopfc", 0x43CA0ACAAE9FC0B2ULL},
    {"bounded-flow-table", 0xD52CC044300776D8ULL},
    {"scenario-tor-uplink-flap", 0xB6D4000497DEDC6CULL},
    {"fct-point", 0x0DC3738C83F3E6EDULL},
};
// CONFIG-HASH-GOLDEN-END

TEST(ConfigHashTest, GoldenTablePinsCanonicalSerialization) {
  const std::vector<ConfigHashGoldenCase> cases = ConfigHashGoldenCases();
  ASSERT_EQ(cases.size(), std::size(kConfigHashGoldens));
  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(cases[i].label, kConfigHashGoldens[i].label);
    EXPECT_EQ(cases[i].hash, kConfigHashGoldens[i].hash)
        << cases[i].label << " — regenerate with the regen-goldens target if the "
        << "serialization change is intentional";
  }
}

TEST(ConfigHashTest, HashCoversEveryInputKnob) {
  const ExperimentConfig base;
  const uint64_t base_hash = ExperimentConfigHash(base);

  ExperimentConfig seed = base;
  seed.seed = base.seed + 1;
  EXPECT_NE(ExperimentConfigHash(seed), base_hash);

  ExperimentConfig ecn = base;
  ecn.ecn.kmin_bytes += 1;
  EXPECT_NE(ExperimentConfigHash(ecn), base_hash);

  ExperimentConfig scenario = base;
  ASSERT_TRUE(ScenarioPreset("tor-uplink-flap", &scenario.scenario));
  EXPECT_NE(ExperimentConfigHash(scenario), base_hash);
}

TEST(ConfigHashTest, FctPointHashSeparatesWorkloadCdfAndDeadline) {
  const ExperimentConfig config;
  WorkloadSpec workload;
  const uint64_t base = FctPointHash(config, workload, "websearch", kSecond);
  EXPECT_EQ(FctPointHash(config, workload, "websearch", kSecond), base);
  EXPECT_NE(FctPointHash(config, workload, "alistorage", kSecond), base);
  EXPECT_NE(FctPointHash(config, workload, "websearch", 2 * kSecond), base);
  WorkloadSpec other = workload;
  other.load += 0.1;
  EXPECT_NE(FctPointHash(config, other, "websearch", kSecond), base);
}

TEST(ConfigHashTest, CanonicalTextIsLineOriented) {
  ConfigHasher h;
  h.Field("a", 1);
  h.Field("b", true);
  h.Field("c", 0.5);
  h.Field("d", "text");
  EXPECT_EQ(h.canonical_text(), "a=1\nb=1\nc=0.5\nd=text\n");
}

// The builtin grids must give every point a distinct hash — resume and merge
// key on (index, hash), and a duplicated hash across indices would let a
// misassembled journal pass verification.
TEST(ConfigHashTest, BuiltinGridPointHashesAreDistinct) {
  for (const std::string& name : BuiltinGridNames()) {
    std::string error;
    const GridDef grid = MakeBuiltinGrid(name, &error);
    ASSERT_FALSE(grid.cases.empty()) << error;
    std::vector<uint64_t> hashes;
    for (const GridCase& c : grid.cases) {
      hashes.push_back(c.point.config_hash);
    }
    std::sort(hashes.begin(), hashes.end());
    EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end())
        << "duplicate config hash in grid " << name;
  }
}

}  // namespace
}  // namespace themis
