// FlowTable unit tests (capacity, collision/rehash, eviction-order
// determinism, aging) plus the fail-open-on-eviction property test: a
// capacity-starved, constantly-evicting Themis-D in front of per-flow
// reference NIC-SR receivers must never stall end-to-end loss recovery —
// every inference the ToR loses at eviction time degrades to "forward
// unvalidated" or "deliver the armed compensation", never to a dangled
// obligation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/net/network.h"
#include "src/sim/random.h"
#include "src/themis/flow_table.h"
#include "src/themis/themis_d.h"
#include "src/topo/leaf_spine.h"
#include "tests/reference_nic_sr.h"

namespace themis {
namespace {

// ---------------------------------------------------------------------------
// Container unit tests (FlowTable<uint32_t>, entry value == key).
// ---------------------------------------------------------------------------

FlowTableConfig Config(size_t capacity, EvictionPolicy policy, TimePs idle_timeout = 0,
                       uint32_t entry_bytes = 28) {
  FlowTableConfig config;
  config.capacity = capacity;
  config.policy = policy;
  config.idle_timeout = idle_timeout;
  config.entry_bytes = entry_bytes;
  return config;
}

// FindOrCreate with entry == key and eviction keys appended to `evicted`.
uint32_t* Insert(FlowTable<uint32_t>& table, uint32_t key, TimePs now,
                 std::vector<uint32_t>* evicted = nullptr, bool* inserted_out = nullptr) {
  bool inserted = false;
  uint32_t* entry = table.FindOrCreate(
      key, now, &inserted, [key] { return key; },
      [evicted](uint32_t victim, uint32_t&&, bool) {
        if (evicted != nullptr) {
          evicted->push_back(victim);
        }
      });
  if (inserted_out != nullptr) {
    *inserted_out = inserted;
  }
  return entry;
}

TEST(FlowTableTest, FullTableWithoutPolicyRejectsInserts) {
  FlowTable<uint32_t> table(Config(2, EvictionPolicy::kNone));
  EXPECT_NE(Insert(table, 1, 0), nullptr);
  EXPECT_NE(Insert(table, 2, 0), nullptr);
  bool inserted = true;
  EXPECT_EQ(Insert(table, 3, 0, nullptr, &inserted), nullptr);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.stats().rejected, 1u);
  EXPECT_EQ(table.stats().evictions, 0u);
  // Existing keys are still reachable; the rejected key is not.
  EXPECT_NE(table.Find(1, 0), nullptr);
  EXPECT_EQ(table.Find(3, 0), nullptr);
}

TEST(FlowTableTest, UnboundedModeNeverEvictsAndTracksLiveFootprint) {
  FlowTable<uint32_t> table(Config(0, EvictionPolicy::kLruClock));
  std::vector<uint32_t> evicted;
  for (uint32_t key = 0; key < 1000; ++key) {
    Insert(table, key, 0, &evicted);
  }
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(table.size(), 1000u);
  EXPECT_FALSE(table.bounded());
  // Unbounded: the dataplane model charges only the live population.
  EXPECT_EQ(table.ModelBytes(), 1000u * 28u);
  EXPECT_EQ(table.stats().peak_occupancy, 1000u);
}

TEST(FlowTableTest, BoundedModelBytesAreProvisionedGeometryNotOccupancy) {
  // The §4 register array occupies capacity x entry width whether or not
  // flows are live — exactly what EstimateThemisMemory's per-QP term says.
  FlowTable<uint32_t> table(Config(1600, EvictionPolicy::kLruClock));
  EXPECT_EQ(table.ModelBytes(), 1600u * 28u);
  Insert(table, 7, 0);
  EXPECT_EQ(table.ModelBytes(), 1600u * 28u);
  EXPECT_GT(table.HostBytes(), 0u);
}

TEST(FlowTableTest, EntryPointersSurviveRehash) {
  // Buckets start at 16 and rehash at 75% load; 200 inserts force several
  // growths. Slots live in a deque, so every previously returned pointer
  // must stay valid and keep its value.
  FlowTable<uint32_t> table(Config(0, EvictionPolicy::kNone));
  std::vector<uint32_t*> pointers;
  for (uint32_t key = 0; key < 200; ++key) {
    pointers.push_back(Insert(table, key * 977u, 0));
  }
  for (uint32_t key = 0; key < 200; ++key) {
    ASSERT_NE(pointers[key], nullptr);
    EXPECT_EQ(*pointers[key], key * 977u);
    // Find resolves through the rebuilt index to the same slot.
    EXPECT_EQ(table.Find(key * 977u, 0), pointers[key]);
  }
}

TEST(FlowTableTest, LruClockEvictionOrderIsExact) {
  // Second-chance clock, capacity 4. Inserting keys 1..4 leaves all
  // reference bits set with the hand at slot 0. Key 5 forces a first circle
  // that clears every bit, then evicts slot 0 (key 1). Find(2) re-arms
  // key 2's bit, so key 6 clears it and evicts key 3 — the first unset slot
  // after the hand.
  FlowTable<uint32_t> table(Config(4, EvictionPolicy::kLruClock));
  std::vector<uint32_t> evicted;
  for (uint32_t key = 1; key <= 4; ++key) {
    Insert(table, key, 0, &evicted);
  }
  Insert(table, 5, 0, &evicted);
  ASSERT_EQ(evicted, (std::vector<uint32_t>{1}));
  EXPECT_NE(table.Find(2, 0), nullptr);  // second chance for key 2
  Insert(table, 6, 0, &evicted);
  EXPECT_EQ(evicted, (std::vector<uint32_t>{1, 3}));
  // Final membership is fully determined.
  for (uint32_t key : {2u, 4u, 5u, 6u}) {
    EXPECT_NE(table.Peek(key), nullptr) << key;
  }
  for (uint32_t key : {1u, 3u}) {
    EXPECT_EQ(table.Peek(key), nullptr) << key;
  }
  EXPECT_EQ(table.stats().evictions, 2u);
}

TEST(FlowTableTest, PeekIsInvisibleToTheClockFindIsNot) {
  // After key 4 evicts key 1, the hand sits past the cleared slots. A flow
  // touched via Find survives the next eviction (its bit is re-armed); the
  // same flow merely Peeked does not. Telemetry sampling must therefore
  // never perturb eviction order.
  auto churn = [](bool use_find) {
    FlowTable<uint32_t> table(Config(3, EvictionPolicy::kLruClock));
    std::vector<uint32_t> evicted;
    for (uint32_t key = 1; key <= 3; ++key) {
      Insert(table, key, 0, &evicted);
    }
    Insert(table, 4, 0, &evicted);  // clears all bits, evicts key 1
    if (use_find) {
      table.Find(2, 0);
    } else {
      table.Peek(2);
    }
    Insert(table, 5, 0, &evicted);
    return evicted;
  };
  EXPECT_EQ(churn(/*use_find=*/true), (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(churn(/*use_find=*/false), (std::vector<uint32_t>{1, 2}));
}

TEST(FlowTableTest, IdleTimeoutNeverSacrificesActiveFlows) {
  FlowTable<uint32_t> table(Config(2, EvictionPolicy::kIdleTimeout, /*idle_timeout=*/100));
  std::vector<uint32_t> evicted;
  Insert(table, 1, /*now=*/0, &evicted);
  Insert(table, 2, /*now=*/10, &evicted);
  // Both entries are younger than the timeout: the insert is refused, the
  // live flows keep their state (a full table of active flows fails open).
  bool inserted = true;
  EXPECT_EQ(Insert(table, 3, /*now=*/50, &evicted, &inserted), nullptr);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(table.stats().rejected, 1u);
  EXPECT_TRUE(evicted.empty());
  // Once both have been quiet past the timeout, the pre-insert age scan
  // reclaims them (budgeted, deterministic hand order).
  EXPECT_NE(Insert(table, 4, /*now=*/150, &evicted), nullptr);
  EXPECT_EQ(evicted, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(table.stats().aged_out, 2u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, PeekMutDoesNotRefreshTheIdleClock) {
  // The reorder buffer's flush timer probes entries via PeekMut; that probe
  // must not make an idle flow look hot, or timers would pin flows in the
  // table forever.
  FlowTable<uint32_t> quiet(Config(1, EvictionPolicy::kIdleTimeout, /*idle_timeout=*/100));
  Insert(quiet, 1, /*now=*/0);
  EXPECT_NE(quiet.PeekMut(1), nullptr);  // control-plane probe at t=90
  std::vector<uint32_t> evicted;
  EXPECT_NE(Insert(quiet, 2, /*now=*/150, &evicted), nullptr);
  EXPECT_EQ(evicted, (std::vector<uint32_t>{1}));  // aged despite the probe
  EXPECT_EQ(quiet.stats().aged_out, 1u);

  FlowTable<uint32_t> touched(Config(1, EvictionPolicy::kIdleTimeout, /*idle_timeout=*/100));
  Insert(touched, 1, /*now=*/0);
  EXPECT_NE(touched.Find(1, /*now=*/90), nullptr);  // dataplane touch
  bool inserted = true;
  EXPECT_EQ(Insert(touched, 2, /*now=*/150, nullptr, &inserted), nullptr);
  EXPECT_FALSE(inserted);  // idle for only 60 < 100: still active, refused
  EXPECT_EQ(touched.stats().rejected, 1u);
}

TEST(FlowTableTest, ClearDropsEntriesButKeepsCumulativeStats) {
  FlowTable<uint32_t> table(Config(4, EvictionPolicy::kLruClock));
  for (uint32_t key = 1; key <= 3; ++key) {
    Insert(table, key, 0);
  }
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(1, 0), nullptr);
  EXPECT_EQ(table.stats().inserts, 3u);        // monotonic counters survive
  EXPECT_EQ(table.stats().peak_occupancy, 3u);
  // The cleared table is fully reusable.
  EXPECT_NE(Insert(table, 9, 0), nullptr);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().inserts, 4u);
}

TEST(FlowTableTest, HitMissAccounting) {
  FlowTable<uint32_t> table(Config(0, EvictionPolicy::kNone));
  EXPECT_EQ(table.Find(1, 0), nullptr);
  Insert(table, 1, 0);
  EXPECT_NE(table.Find(1, 0), nullptr);
  EXPECT_NE(table.Find(1, 0), nullptr);
  EXPECT_EQ(table.stats().misses, 2u);  // the failed Find + FindOrCreate's probe
  EXPECT_EQ(table.stats().hits, 2u);
}

TEST(FlowTableTest, EvictionOrderIsIdenticalAcrossRunsAndSweepThreads) {
  // The table draws no randomness and never reads the wall clock, so a
  // fixed churn sequence yields a bit-identical eviction stream — including
  // under different THEMIS_SWEEP_THREADS settings (the env var the sweep
  // driver uses; nothing in the table may consult it).
  auto churn = [] {
    FlowTable<uint32_t> table(Config(8, EvictionPolicy::kLruClock));
    std::vector<uint32_t> evicted;
    uint64_t x = 0x9E3779B97F4A7C15ull;  // fixed LCG churn, 64-key universe
    for (TimePs now = 0; now < 4096; ++now) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      Insert(table, static_cast<uint32_t>(x >> 33) % 64, now, &evicted);
    }
    return evicted;
  };
  setenv("THEMIS_SWEEP_THREADS", "1", /*overwrite=*/1);
  const std::vector<uint32_t> first = churn();
  setenv("THEMIS_SWEEP_THREADS", "8", /*overwrite=*/1);
  const std::vector<uint32_t> second = churn();
  unsetenv("THEMIS_SWEEP_THREADS");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Fail-open-on-eviction property test: an evicting Themis-D between real
// senders and the brute-force reference NIC-SR receiver.
// ---------------------------------------------------------------------------

class RecordingHost : public Node {
 public:
  RecordingHost(Simulator* sim, int id, std::string name)
      : Node(sim, id, NodeKind::kHost, std::move(name)) {}
  void ReceivePacket(const Packet& pkt, int) override { received.push_back(pkt); }
  std::vector<Packet> received;
};

// Many flows, random loss/duplication, fully shuffled cross-flow arrival
// order, through a dst ToR whose Themis-D has a 4-entry LRU flow table —
// every flow is evicted over and over mid-recovery. The sender implements
// the NIC-SR contract: selective-retransmit whatever NACK reaches it, plus
// a retransmission-timeout fallback (resend the current ePSN) for rounds
// where Themis blocked the NACK and the armed compensation has not fired
// yet. The property: recovery terminates for every flow within the
// selective-retransmit bound — eviction may cost filtering efficacy (leaked
// spurious NACKs), never correctness.
TEST(FlowTableFailOpenPropertyTest, EvictingThemisDNeverStallsRecovery) {
  constexpr uint32_t kFlows = 12;
  constexpr uint32_t kPackets = 24;

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator sim;
    Network net{&sim};
    std::vector<RecordingHost*> hosts;
    LeafSpineConfig topo_config;
    topo_config.num_tors = 2;
    topo_config.num_spines = 2;
    topo_config.hosts_per_tor = 1;
    Topology topo =
        BuildLeafSpine(net, topo_config, [&hosts](Network& n, int, const std::string& name) {
          RecordingHost* host = n.MakeNode<RecordingHost>(name);
          hosts.push_back(host);
          return host;
        });
    Switch* dst_tor = topo.tors[1];
    RecordingHost* sender = hosts[0];
    RecordingHost* receiver = hosts[1];

    ThemisDConfig config;
    config.num_paths = 2;
    config.queue_capacity = 16;
    config.truncate_entries = true;
    config.compensation_enabled = true;
    config.flow_table.capacity = 4;  // 12 live flows -> constant eviction
    config.flow_table.policy = EvictionPolicy::kLruClock;
    ThemisD hook(config, nullptr);
    dst_tor->AddHook(&hook);

    std::vector<ReferenceNicSr> refs(kFlows);
    Rng rng(seed);

    // Per-flow loss/dup schedule, then a global shuffle so packets of
    // different flows interleave arbitrarily (maximal table churn).
    std::vector<std::pair<uint32_t, uint32_t>> schedule;  // (flow, psn)
    for (uint32_t flow = 0; flow < kFlows; ++flow) {
      for (uint32_t psn = 0; psn < kPackets; ++psn) {
        if (rng.Chance(0.15)) {
          continue;  // lost in the fabric
        }
        schedule.push_back({flow, psn});
        if (rng.Chance(0.10)) {
          schedule.push_back({flow, psn});
        }
      }
    }
    for (size_t i = schedule.size(); i > 1; --i) {
      std::swap(schedule[i - 1], schedule[rng.Below(i)]);
    }

    auto send_data = [&](uint32_t flow, uint32_t psn) {
      dst_tor->ReceivePacket(
          MakeDataPacket(flow + 1, sender->id(), receiver->id(), psn, 100, 0x42),
          /*in=*/1);
    };
    size_t rx_consumed = 0;
    // Drains the fabric, hands newly arrived data to the per-flow reference
    // receivers, and plays their ACK/NACK stream back through the ToR —
    // where Themis-D snoops ACKs and validates (or blocks) NACKs.
    auto pump = [&] {
      sim.Run();
      for (; rx_consumed < receiver->received.size(); ++rx_consumed) {
        const Packet& pkt = receiver->received[rx_consumed];
        if (pkt.type != PacketType::kData) {
          continue;
        }
        const uint32_t flow = pkt.flow_id - 1;
        for (const RefControl& ctrl : refs[flow].Deliver(pkt.psn, 100)) {
          dst_tor->ReceivePacket(MakeControlPacket(ctrl.type, pkt.flow_id, receiver->id(),
                                                   sender->id(), ctrl.psn, 0x42),
                                 /*in=*/0);
        }
      }
      sim.Run();
    };

    for (const auto& [flow, psn] : schedule) {
      send_data(flow, psn);
    }
    pump();

    auto incomplete = [&] {
      for (const ReferenceNicSr& ref : refs) {
        if (ref.epsn() < kPackets) {
          return true;
        }
      }
      return false;
    };

    size_t tx_consumed = 0;
    uint32_t rounds = 0;
    while (incomplete()) {
      // Selective retransmit advances every incomplete flow's ePSN by at
      // least one per round, so recovery is bounded by the stream length.
      ASSERT_LT(rounds, kPackets + 4) << "recovery stalled, seed " << seed;
      ++rounds;
      std::set<std::pair<uint32_t, uint32_t>> resend;
      // NACKs that reached the sender (validated-genuine, fail-open
      // forwarded after an eviction, or eviction-time compensations) each
      // name an ePSN: retransmit exactly that PSN.
      for (; tx_consumed < sender->received.size(); ++tx_consumed) {
        const Packet& pkt = sender->received[tx_consumed];
        if (pkt.type == PacketType::kNack) {
          resend.insert({pkt.flow_id - 1, pkt.psn});
        }
      }
      // RTO fallback: a blocked NACK whose compensation has not fired yet
      // must not stall the flow — the sender's timeout path covers it.
      for (uint32_t flow = 0; flow < kFlows; ++flow) {
        if (refs[flow].epsn() < kPackets) {
          resend.insert({flow, refs[flow].epsn()});
        }
      }
      for (const auto& [flow, psn] : resend) {
        send_data(flow, psn);
      }
      pump();
    }

    for (uint32_t flow = 0; flow < kFlows; ++flow) {
      EXPECT_EQ(refs[flow].epsn(), kPackets) << "seed " << seed << " flow " << flow;
      EXPECT_EQ(refs[flow].ooo_size(), 0u) << "seed " << seed << " flow " << flow;
    }
    // The property is only meaningful if eviction actually happened — with
    // 12 flows in 4 slots it must have, constantly.
    EXPECT_GT(hook.flow_table_stats().evictions, 100u) << "seed " << seed;
    EXPECT_EQ(hook.flow_table_stats().rejected, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace themis
