// Tests for the in-network reordering baseline (ConWeave-style, §2.3):
// hold-and-release semantics, timeout and overflow flushes, and the
// end-to-end effect of shielding NIC-SR from spray-induced OOO — plus the
// buffer-occupancy cost the paper argues makes this approach unscalable.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/themis/reorder_buffer.h"
#include "src/topo/leaf_spine.h"

namespace themis {
namespace {

class RecordingHost : public Node {
 public:
  RecordingHost(Simulator* sim, int id, std::string name)
      : Node(sim, id, NodeKind::kHost, std::move(name)) {}
  void ReceivePacket(const Packet& pkt, int) override { received.push_back(pkt); }
  std::vector<Packet> received;
};

struct ReorderHarness {
  Simulator sim;
  Network net{&sim};
  std::vector<RecordingHost*> hosts;
  Topology topo;
  std::unique_ptr<InNetworkReorderHook> hook;
  Switch* dst_tor = nullptr;

  explicit ReorderHarness(ReorderHookConfig config = {}) {
    LeafSpineConfig topo_config;
    topo_config.num_tors = 2;
    topo_config.num_spines = 2;
    topo_config.hosts_per_tor = 1;
    topo = BuildLeafSpine(net, topo_config, [this](Network& n, int, const std::string& name) {
      RecordingHost* host = n.MakeNode<RecordingHost>(name);
      hosts.push_back(host);
      return host;
    });
    dst_tor = topo.tors[1];
    hook = std::make_unique<InNetworkReorderHook>(&sim, config, nullptr);
    dst_tor->AddHook(hook.get());
  }

  void Arrive(uint32_t psn) { ArriveFlow(1, psn); }

  void ArriveFlow(uint32_t flow, uint32_t psn) {
    dst_tor->ReceivePacket(
        MakeDataPacket(flow, hosts[0]->id(), hosts[1]->id(), psn, 1000, 0x77), /*in=*/1);
  }

  std::vector<uint32_t> DeliveredPsns() {
    sim.Run();
    std::vector<uint32_t> psns;
    for (const Packet& pkt : hosts[1]->received) {
      psns.push_back(pkt.psn);
    }
    return psns;
  }
};

TEST(ReorderHookTest, ReordersOutOfOrderArrivals) {
  ReorderHarness h;
  for (uint32_t psn : {0u, 2u, 1u, 4u, 3u}) {
    h.Arrive(psn);
  }
  EXPECT_EQ(h.DeliveredPsns(), (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(h.hook->stats().packets_held, 2u);
  EXPECT_EQ(h.hook->total_buffered_bytes(), 0);
}

TEST(ReorderHookTest, InOrderStreamPassesUntouched) {
  ReorderHarness h;
  for (uint32_t psn = 0; psn < 10; ++psn) {
    h.Arrive(psn);
  }
  EXPECT_EQ(h.DeliveredPsns().size(), 10u);
  EXPECT_EQ(h.hook->stats().packets_held, 0u);
}

TEST(ReorderHookTest, TimeoutFlushReleasesInOrderWithGap) {
  ReorderHookConfig config;
  config.flush_timeout = 10 * kMicrosecond;
  ReorderHarness h(config);
  h.Arrive(0);
  h.Arrive(3);  // 1 and 2 lost
  h.Arrive(2);
  const auto delivered = h.DeliveredPsns();  // runs until flush timer fires
  EXPECT_EQ(delivered, (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(h.hook->stats().timeout_flushes, 1u);
}

TEST(ReorderHookTest, ResumesAfterTimeoutFlush) {
  ReorderHookConfig config;
  config.flush_timeout = 10 * kMicrosecond;
  ReorderHarness h(config);
  h.Arrive(0);
  h.Arrive(2);  // 1 lost
  h.sim.Run();  // flush fires: 0, 2 delivered, expected -> 3
  h.Arrive(3);
  h.Arrive(4);
  EXPECT_EQ(h.DeliveredPsns(), (std::vector<uint32_t>{0, 2, 3, 4}));
}

TEST(ReorderHookTest, OverflowForcesFlush) {
  ReorderHookConfig config;
  config.per_flow_buffer_bytes = 3000;  // < 3 held packets of ~1064 B wire
  ReorderHarness h(config);
  h.Arrive(0);
  for (uint32_t psn : {5u, 4u, 3u, 2u}) {  // hole at 1 never fills
    h.Arrive(psn);
  }
  const auto delivered = h.DeliveredPsns();
  EXPECT_EQ(h.hook->stats().overflow_flushes, 1u);
  // The flush released the buffered run {3,4,5} in order and re-anchored
  // past it; the straggler 2 then passed through as "old" (exactly like a
  // late retransmission would).
  EXPECT_EQ(delivered, (std::vector<uint32_t>{0, 3, 4, 5, 2}));
}

TEST(ReorderHookTest, TracksPeakBufferOccupancy) {
  ReorderHarness h;
  h.Arrive(0);
  for (uint32_t psn = 10; psn > 1; --psn) {  // 9 OOO packets held
    h.Arrive(psn);
  }
  EXPECT_GT(h.hook->stats().max_buffered_bytes, 8 * 1000);
  h.Arrive(1);  // drains everything
  EXPECT_EQ(h.DeliveredPsns().size(), 11u);
  EXPECT_EQ(h.hook->total_buffered_bytes(), 0);
}

TEST(ReorderHookTest, DuplicatesPassThrough) {
  ReorderHarness h;
  h.Arrive(0);
  h.Arrive(1);
  h.Arrive(0);  // retransmitted duplicate
  EXPECT_EQ(h.DeliveredPsns(), (std::vector<uint32_t>{0, 1, 0}));
}

// --- Bounded per-flow state (shared FlowTable substrate) --------------------

TEST(ReorderHookTest, EvictionFlushesHeldPacketsInOrder) {
  // Capacity 1: flow 2's first packet evicts flow 1 while flow 1 still has
  // a held OOO packet and an armed flush timer. Eviction must release the
  // held data in PSN order (fail open — buffered packets are never dropped)
  // and the cancelled timer must not fire later.
  ReorderHookConfig config;
  config.flush_timeout = 10 * kMicrosecond;
  config.flow_table.capacity = 1;
  config.flow_table.policy = EvictionPolicy::kLruClock;
  ReorderHarness h(config);
  h.Arrive(0);
  h.Arrive(3);  // held: gap at 1-2
  h.Arrive(2);  // held
  h.ArriveFlow(2, 0);  // evicts flow 1 mid-hold
  EXPECT_EQ(h.hook->flow_table_stats().evictions, 1u);
  EXPECT_EQ(h.hook->stats().eviction_flushes, 1u);
  EXPECT_EQ(h.DeliveredPsns(), (std::vector<uint32_t>{0, 2, 3, 0}));
  EXPECT_EQ(h.hook->stats().timeout_flushes, 0u);  // timer died with the entry
  EXPECT_EQ(h.hook->total_buffered_bytes(), 0);
}

TEST(ReorderHookTest, RejectedFlowsPassThroughUnbuffered) {
  // kNone + full table: the surplus flow gets no reorder shielding but its
  // packets are forwarded untouched (OOO and all) — never held, never lost.
  ReorderHookConfig config;
  config.flow_table.capacity = 1;
  config.flow_table.policy = EvictionPolicy::kNone;
  ReorderHarness h(config);
  h.Arrive(0);  // flow 1 owns the only slot
  h.ArriveFlow(2, 0);
  h.ArriveFlow(2, 2);  // OOO, but untracked: passes straight through
  EXPECT_EQ(h.hook->stats().flows_rejected, 2u);
  EXPECT_EQ(h.hook->flow_table_stats().evictions, 0u);
  EXPECT_EQ(h.DeliveredPsns(), (std::vector<uint32_t>{0, 0, 2}));
  EXPECT_EQ(h.hook->stats().packets_held, 0u);
}

// --- End-to-end as a Scheme -------------------------------------------------

TEST(SprayReorderSchemeTest, ShieldsNicSrFromSprayOoo) {
  ExperimentConfig config;
  config.num_tors = 2;
  config.num_spines = 4;
  config.hosts_per_tor = 4;
  config.link_rate = Rate::Gbps(100);
  config.scheme = Scheme::kSprayReorder;
  config.cc = CcKind::kDcqcn;
  config.dcqcn_ti = 10 * kMicrosecond;
  config.dcqcn_td = 200 * kMicrosecond;
  config.fabric_delay_skew = 200 * kNanosecond;
  Experiment exp(config);
  auto result = exp.RunCollective(CollectiveKind::kNeighborRing,
                                  {{0, 4, 1, 5}, {2, 6, 3, 7}}, 4 << 20, 10 * kSecond);
  ASSERT_TRUE(result.all_done);
  // The ToR absorbed the reordering: the NICs saw (nearly) in-order
  // streams. (Occasional timeout flushes under deep queueing may leak a
  // handful of NACKs; they must be orders of magnitude below the ~10k of
  // naked spraying.)
  EXPECT_LT(exp.TotalNacksReceived(), 100u);
  EXPECT_LT(exp.AggregateRetransmissionRatio(), 0.01);
  const ReorderHookStats stats = exp.ReorderStats();
  EXPECT_GT(stats.packets_held, 0u);
  // ...at a per-switch buffering cost orders of magnitude above Themis-D's
  // ~120 B/QP flow state (the paper's §2.3 scalability argument).
  EXPECT_GT(stats.max_total_buffered_bytes, 10 * 1024);
}

TEST(SprayReorderSchemeTest, IntraRackTrafficNotBuffered) {
  ExperimentConfig config;
  config.num_tors = 2;
  config.num_spines = 4;
  config.hosts_per_tor = 4;
  config.link_rate = Rate::Gbps(100);
  config.scheme = Scheme::kSprayReorder;
  config.cc = CcKind::kFixedRate;
  Experiment exp(config);
  auto result =
      exp.RunCollective(CollectiveKind::kNeighborRing, {{0, 1, 2, 3}}, 1 << 20, kSecond);
  ASSERT_TRUE(result.all_done);
  EXPECT_EQ(exp.ReorderStats().packets_held, 0u);
}

}  // namespace
}  // namespace themis
